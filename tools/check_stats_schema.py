#!/usr/bin/env python3
"""Validate a `cfs sim --stats-json` document against tools/stats_schema.json.

Pure-stdlib implementation of the JSON Schema subset the pin actually uses:
type, properties, required, additionalProperties, items, enum, minimum.
Exits 0 on success, 1 with a list of violations otherwise.

The pinned shape includes the two-dimensional parallelism fields: meta.batch
(pattern-lane width, >= 1 next to meta.threads) and the packed good-machine
counters batch_words_evaluated / batch_lanes_wasted, required in
totals.counters (zero on scalar runs); the driver timers may carry a
good_batch phase on batched runs.

It also pins the telemetry blocks (obs/timeline.h, obs/histogram.h): a
top-level "timeline" object (always present; zero-dimension and empty when
the run was not sampled) and, in totals and every engines[] entry, the
work-attribution "histograms" (list_length / divergence_size, power-of-two
buckets with zero buckets elided) and per-level "levels" profile.  Under
-DCFS_OBS=OFF these blocks still exist but carry only zeros -- the schema
deliberately does not require non-zero counts.

The dynamic-rebalancing telemetry (sim/sharded_sim.h) is pinned too: a
top-level "rebalance" object (rebalances / faults_migrated /
elements_migrated, zero unless --rebalance fired) and a cumulative
"rebalances" field in every timeline sample's work section.

Usage: check_stats_schema.py <stats.json> [schema.json]
"""
import json
import os
import sys


def type_ok(value, t):
    if t == "object":
        return isinstance(value, dict)
    if t == "array":
        return isinstance(value, list)
    if t == "string":
        return isinstance(value, str)
    if t == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if t == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if t == "boolean":
        return isinstance(value, bool)
    if t == "null":
        return value is None
    raise ValueError(f"unsupported schema type {t!r}")


def validate(value, schema, path, errors):
    t = schema.get("type")
    if t is not None and not type_ok(value, t):
        errors.append(f"{path}: expected {t}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, v in value.items():
                if key not in props:
                    validate(v, extra, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    default_schema = os.path.join(os.path.dirname(os.path.abspath(argv[0])),
                                  "stats_schema.json")
    schema_path = argv[2] if len(argv) == 3 else default_schema
    with open(argv[1]) as f:
        doc = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    errors = []
    validate(doc, schema, "$", errors)
    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1
    print(f"OK {argv[1]} matches {os.path.basename(schema_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
