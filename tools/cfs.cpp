// cfs -- the command-line front end of the fault-simulation library.
//
//   cfs stats    <circuit>                      circuit statistics
//   cfs gen      <benchmark> [--out=FILE]       emit a synthetic benchmark
//   cfs macro    <circuit> [--cap=N]            macro extraction report
//   cfs collapse <circuit>                      fault-collapsing report
//   cfs tgen     <circuit> [--out=FILE] [--budget=N] [--seed=N] [--reset0]
//   cfs sim      <circuit> [--engine=csim-mv|csim-v|csim-m|csim|proofs|
//                           serial|deductive]
//                          [--tests=FILE | --random=N] [--seed=N]
//                          [--reset0] [--transition] [--verbose]
//                          [--threads=N] [--batch=N|auto]
//                          [--rebalance=off|auto|N] [--rebalance-threshold=R]
//
// <circuit> is a .bench file path (contains '.' or '/') or the name of a
// built-in ISCAS-89 profile benchmark (s27, s298, ..., s35932).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "args.h"
#include "baseline/deductive_sim.h"
#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "faults/sampling.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/stats_export.h"
#include "harness/table.h"
#include "obs/progress.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "netlist/bench_parser.h"
#include "resil/campaign.h"
#include "resil/containment.h"
#include "simd/simd.h"
#include "svc/client.h"
#include "netlist/bench_writer.h"
#include "netlist/macro_extract.h"
#include "patterns/compaction.h"
#include "patterns/tgen.h"
#include "util/error.h"
#include "util/memtrack.h"
#include "util/stopwatch.h"

namespace {

using namespace cfs;
using cli::Args;

Circuit load_circuit(const std::string& spec) {
  if (spec.find('/') != std::string::npos ||
      spec.find('.') != std::string::npos) {
    return parse_bench_file(spec);
  }
  return make_benchmark(spec);
}

int cmd_stats(const Args& args) {
  args.allow_only({});
  const Circuit c = load_circuit(args.positional().at(0));
  const auto st = c.stats();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const FaultUniverse t = FaultUniverse::all_transition(c);
  std::printf("circuit      %s\n", c.name().c_str());
  std::printf("inputs       %zu\n", st.num_pis);
  std::printf("outputs      %zu\n", st.num_pos);
  std::printf("flip-flops   %zu\n", st.num_dffs);
  std::printf("gates        %zu\n", st.num_comb_gates);
  std::printf("levels       %u\n", st.num_levels);
  std::printf("max fanin    %zu\n", st.max_fanin);
  std::printf("max fanout   %zu\n", st.max_fanout);
  std::printf("sa faults    %zu\n", u.size());
  std::printf("tr faults    %zu\n", t.size());
  std::printf("image bytes  %s\n", format_bytes(c.bytes()).c_str());
  return 0;
}

int cmd_gen(const Args& args) {
  args.allow_only({"out"});
  const Circuit c = make_benchmark(args.positional().at(0));
  const std::string text = write_bench(c);
  const std::string out = args.get("out");
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream f(out);
    if (!f) throw Error("cannot write " + out);
    f << text;
    std::printf("wrote %s (%zu gates)\n", out.c_str(), c.num_gates());
  }
  return 0;
}

int cmd_macro(const Args& args) {
  args.allow_only({"cap"});
  const Circuit c = load_circuit(args.positional().at(0));
  MacroOptions opt;
  opt.max_inputs = static_cast<unsigned>(args.get_u64("cap", 4));
  const MacroExtraction ext = extract_macros(c, opt);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  std::size_t collapsed_gates = 0;
  for (const MacroInfo& m : ext.macros) collapsed_gates += m.internal.size();
  std::printf("gates        %zu -> %zu\n", c.num_gates(),
              ext.circuit.num_gates());
  std::printf("macros       %zu (covering %zu gates, cap %u inputs)\n",
              ext.macros.size(), collapsed_gates, opt.max_inputs);
  std::printf("functional   %zu faults (%zu masked inside their region)\n",
              mm.num_functional, mm.num_masked);
  std::printf("table bytes  %s\n", format_bytes(mm.bytes()).c_str());
  return 0;
}

int cmd_collapse(const Args& args) {
  args.allow_only({});
  const Circuit c = load_circuit(args.positional().at(0));
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto rep = collapse_equivalent(c, u);
  std::size_t classes = 0;
  for (std::uint32_t i = 0; i < rep.size(); ++i) classes += rep[i] == i;
  std::printf("faults       %zu\n", u.size());
  std::printf("classes      %zu (%.1f%% of the universe)\n", classes,
              100.0 * static_cast<double>(classes) /
                  static_cast<double>(u.size()));
  return 0;
}

int cmd_tgen(const Args& args) {
  args.allow_only({"out", "budget", "seed", "reset0"});
  const Circuit c = load_circuit(args.positional().at(0));
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TgenOptions opt;
  opt.max_vectors = args.get_u64("budget", 4096);
  opt.seed = args.get_u64("seed", 7);
  opt.ff_init = args.has("reset0") ? Val::Zero : Val::X;
  Stopwatch sw;
  const TgenResult r = generate_tests(c, u, opt);
  std::printf("%zu vectors in %zu sequences, %.2f%% coverage (%zu/%zu hard, "
              "%zu potential), %.2fs\n",
              r.suite.total_vectors(), r.suite.num_sequences(),
              r.coverage.pct(), r.coverage.hard, r.coverage.total,
              r.coverage.potential, sw.seconds());
  const std::string out = args.get("out");
  if (!out.empty()) {
    r.suite.save(out, c.name() + " tests (cfs tgen)");
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_compact(const Args& args) {
  args.allow_only({"tests", "out", "reset0"});
  const Circuit c = load_circuit(args.positional().at(0));
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite tests = TestSuite::load(args.get("tests"));
  if (tests.empty()) {
    throw Error("test file '" + args.get("tests") + "' contains no vectors");
  }
  if (tests.num_inputs() != c.inputs().size()) {
    throw Error("test file width does not match the circuit's inputs");
  }
  CompactionOptions opt;
  opt.ff_init = args.has("reset0") ? Val::Zero : Val::X;
  Stopwatch sw;
  const SuiteCompactionResult r = compact_suite(c, u, tests, opt);
  std::printf("%zu -> %zu vectors (%.1f%% kept), %zu validation sims, "
              "%.2fs\n",
              r.original_vectors, r.suite.total_vectors(),
              100.0 * static_cast<double>(r.suite.total_vectors()) /
                  static_cast<double>(
                      r.original_vectors ? r.original_vectors : 1),
              r.simulations, sw.seconds());
  std::printf("coverage preserved at %.2f%% (%zu hard)\n", r.coverage.pct(),
              r.coverage.hard);
  const std::string out = args.get("out");
  if (!out.empty()) {
    r.suite.save(out, c.name() + " compacted tests");
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

void print_shard_stats(const RunResult& r) {
  for (std::size_t s = 0; s < r.stats.per_engine.size(); ++s) {
    const EngineStats& e = r.stats.per_engine[s];
    std::printf("  shard %-2zu  %10llu gates  %12llu elements  "
                "%8llu vec  %8llu drop  %8zu peak  %s\n",
                s, static_cast<unsigned long long>(e.gates_processed),
                static_cast<unsigned long long>(e.elements_evaluated),
                static_cast<unsigned long long>(e.vectors_simulated),
                static_cast<unsigned long long>(e.faults_dropped),
                e.peak_elements, format_bytes(e.state_bytes).c_str());
  }
  const EngineStats& tot = r.stats.total;
  std::printf("  total     %10llu gates  %12llu elements  "
              "%8llu vec  %8llu drop  %8zu peak  %s\n",
              static_cast<unsigned long long>(tot.gates_processed),
              static_cast<unsigned long long>(tot.elements_evaluated),
              static_cast<unsigned long long>(tot.vectors_simulated),
              static_cast<unsigned long long>(tot.faults_dropped),
              tot.peak_elements, format_bytes(tot.state_bytes).c_str());
}

// --rebalance=off|auto|N picks the dynamic shard-rebalancing policy
// (sim/sharded_sim.h): off keeps the static round-robin partition, auto
// repartitions when the live-element imbalance ratio crosses
// --rebalance-threshold (default 1.25), and a number N repartitions
// unconditionally every N vectors.  Results are bit-identical for every
// policy; only the work/wall telemetry changes.
RebalancePolicy parse_rebalance(const Args& args) {
  RebalancePolicy rp;
  const std::string spec = args.get("rebalance", "off");
  if (spec == "off") {
    rp.mode = RebalancePolicy::Mode::Off;
  } else if (spec == "auto") {
    rp.mode = RebalancePolicy::Mode::Auto;
  } else {
    if (spec.empty() ||
        spec.find_first_not_of("0123456789") != std::string::npos ||
        spec == "0") {
      throw Error("--rebalance must be off, auto, or a period N >= 1");
    }
    rp.mode = RebalancePolicy::Mode::Every;
    rp.every = std::stoull(spec);
  }
  if (args.has("rebalance-threshold")) {
    const std::string t = args.get("rebalance-threshold");
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0' || !(v >= 1.0)) {
      throw Error("--rebalance-threshold must be a number >= 1.0");
    }
    rp.threshold = v;
  }
  return rp;
}

// Resilient campaign path of `cfs sim`: checkpoint/resume, shard failure
// containment, memory-budget multi-pass degradation (resil/campaign.h).
// Selected whenever any campaign flag is present.
int run_campaign(const Args& args, const Circuit& c, const std::string& engine,
                 Val ff_init, unsigned threads, unsigned batch,
                 const TestSuite& tests) {
  for (const char* bad : {"sample", "collapse", "stats-json"}) {
    if (args.has(bad)) {
      throw Error("--" + std::string(bad) +
                  " cannot be combined with campaign flags");
    }
  }
  // Transition mode never extracts macros (mirrors run_csim_transition:
  // csim-mv in transition mode means split lists only).
  const bool use_macros = (engine == "csim-mv" || engine == "csim-m") &&
                          !args.has("transition");

  resil::CampaignOptions copt;
  copt.ff_init = ff_init;
  copt.sharded.num_threads = threads;
  // Campaigns replay vector-by-vector (checkpoint boundaries demand it), so
  // the scalar good machine runs regardless; accepting the flag keeps one
  // command line valid across plain and campaign runs.
  copt.sharded.batch_width = batch;
  copt.sharded.rebalance = parse_rebalance(args);
  copt.sharded.csim.split_lists = engine == "csim-mv" || engine == "csim-v";
  copt.sharded.csim.max_elements = args.get_u64("max-elements", 0);
  copt.sharded.resil.max_retries =
      static_cast<unsigned>(args.get_u64("retries", 0));
  copt.sharded.resil.deadline_ms =
      static_cast<std::uint32_t>(args.get_u64("deadline-ms", 0));
  copt.sharded.resil.backoff_ms =
      static_cast<std::uint32_t>(args.get_u64("backoff-ms", 1));
  copt.checkpoint_path = args.get("checkpoint");
  copt.checkpoint_every = args.get_u64("checkpoint-every", 0);
  copt.resume_path = args.get("resume");
  copt.halt_after = args.get_u64("halt-after", 0);
  copt.sleep_ms = static_cast<std::uint32_t>(args.get_u64("sleep-ms", 0));

  // Telemetry rides along: fail fast on unwritable paths (the files
  // themselves are created lazily, after work has been done).
  const std::string trace_path = args.get("trace");
  obs::TraceEmitter trace;
  if (!trace_path.empty()) {
    obs::ensure_writable(trace_path, "trace");
    copt.trace = &trace;
  }
  const std::string timeline_path = args.get("timeline");
  obs::Timeline timeline(4096, args.get_u64("sample-every", 1));
  obs::ProgressMeter meter(tests.total_vectors());
  if (!timeline_path.empty()) {
    obs::ensure_writable(timeline_path, "timeline");
    timeline.stream_to(timeline_path);
    copt.timeline = &timeline;
  }
  if (args.has("progress")) {
    meter.attach(timeline);
    copt.timeline = &timeline;
  }

  // Sabotage hook for containment testing.  Only contained when --retries
  // is also given; without it an injected failure aborts the run, which is
  // the negative control.
  resil::FaultInjector injector;
  if (args.has("inject")) {
    for (const resil::InjectionSpec& spec :
         resil::FaultInjector::parse(args.get("inject"))) {
      injector.add(spec);
    }
    copt.sharded.resil.injector = &injector;
  }

  const FaultUniverse u = args.has("transition")
                              ? FaultUniverse::all_transition(c)
                              : FaultUniverse::all_stuck_at(c);
  Stopwatch sw;
  resil::CampaignResult r;
  std::string sim_name = engine;
  if (use_macros) {
    MacroExtraction ext = extract_macros(c);
    MacroFaultMap mmap = map_faults_to_macros(c, ext, u);
    resil::CampaignRunner runner(ext.circuit, u, tests, copt, &mmap);
    r = runner.run();
  } else {
    resil::CampaignRunner runner(c, u, tests, copt);
    r = runner.run();
  }
  meter.finish();

  std::printf("campaign %s on %s: %zu faults, %zu vectors in %zu "
              "sequences%s\n",
              sim_name.c_str(), c.name().c_str(), u.size(),
              tests.total_vectors(), tests.num_sequences(),
              copt.resume_path.empty() ? "" : " (resumed)");
  std::printf("coverage  %.2f%% (%zu/%zu hard, %zu potential)\n",
              r.coverage.pct(), r.coverage.hard, r.coverage.total,
              r.coverage.potential);
  std::printf("counters  hard=%llu potential=%llu dropped=%llu\n",
              static_cast<unsigned long long>(r.detections_hard),
              static_cast<unsigned long long>(r.detections_potential),
              static_cast<unsigned long long>(r.faults_dropped));
  std::printf("digest    %016llx\n",
              static_cast<unsigned long long>(r.digest()));
  std::printf("passes    %u, %llu vectors simulated, %llu checkpoints\n",
              r.passes, static_cast<unsigned long long>(r.vectors),
              static_cast<unsigned long long>(r.checkpoints_written));
  std::printf("resil     retries=%llu requeues=%llu peak=%zu elements\n",
              static_cast<unsigned long long>(r.shard_retries),
              static_cast<unsigned long long>(r.shard_requeues),
              r.peak_elements);
  if (r.rebalances > 0) {
    std::printf("rebal     rebalances=%llu faults=%llu elements=%llu\n",
                static_cast<unsigned long long>(r.rebalances),
                static_cast<unsigned long long>(r.faults_migrated),
                static_cast<unsigned long long>(r.elements_migrated));
  }
  std::printf("cpu       %.3fs\n", sw.seconds());
  if (r.halted) {
    std::printf("halted    after %llu vectors%s\n",
                static_cast<unsigned long long>(r.vectors),
                copt.checkpoint_path.empty() ? ""
                                             : " (checkpoint written)");
  }
  if (copt.trace != nullptr) {
    trace.save(trace_path);
    std::printf("trace     %s (%zu events, chrome://tracing)\n",
                trace_path.c_str(), trace.num_events());
  }
  if (!timeline_path.empty()) {
    std::printf("timeline  %s (%llu samples)\n", timeline_path.c_str(),
                static_cast<unsigned long long>(timeline.recorded()));
  }
  return 0;
}

int cmd_sim(const Args& args) {
  args.allow_only(
      {"engine", "tests", "random", "seed", "reset0", "transition",
       "verbose", "sample", "collapse", "threads", "batch", "simd", "trace",
       "stats-json", "timeline", "progress", "sample-every",
       "rebalance", "rebalance-threshold",
       "checkpoint", "checkpoint-every", "resume", "max-elements", "retries",
       "deadline-ms", "backoff-ms", "inject", "halt-after", "sleep-ms"});
  const Circuit c = load_circuit(args.positional().at(0));
  const std::string engine = args.get("engine", "csim-mv");
  // --simd pins the vector-kernel table before any engine is built;
  // "auto" (the default) re-detects the widest supported ISA, "off"
  // selects the portable scalar oracle.  Every table is bit-identical, so
  // this only ever changes speed (simd/simd.h).
  const std::string simd_spec = args.get("simd", "auto");
  if (!simd::set_isa(simd_spec)) {
    throw Error("--simd must be auto|off|scalar|sse4.2|avx2|neon (and "
                "runnable by this build/host); got '" + simd_spec + "'");
  }
  const Val ff_init = args.has("reset0") ? Val::Zero : Val::X;
  const unsigned threads =
      static_cast<unsigned>(args.get_u64("threads", 1));
  if (threads == 0) throw Error("--threads must be at least 1");

  // --batch=N picks the pattern-lane width of the packed good machine
  // (sim/batch_good_sim.h); "auto" means 64 for combinational circuits,
  // where every vector is independent, and 1 for sequential ones, where
  // lanes only pack across separate sequences.
  const std::string batch_spec = args.get("batch", "auto");
  unsigned batch = 1;
  if (batch_spec == "auto") {
    batch = c.dffs().empty() ? 64u : 1u;
  } else {
    const std::uint64_t n = args.get_u64("batch", 1);
    if (n == 0 || n > kMaxBatchLanes) {
      throw Error("--batch must be 1..256 (or auto)");
    }
    batch = static_cast<unsigned>(n);
  }

  TestSuite tests;
  if (args.has("tests")) {
    tests = TestSuite::load(args.get("tests"));
    if (tests.empty()) {
      throw Error("test file '" + args.get("tests") +
                  "' contains no vectors");
    }
    if (tests.num_inputs() != c.inputs().size()) {
      throw Error("test file width does not match the circuit's inputs");
    }
  } else {
    tests = TestSuite(PatternSet::random(c.inputs().size(),
                                         args.get_u64("random", 256),
                                         args.get_u64("seed", 1)));
  }

  const bool csim_engine = engine == "csim-mv" || engine == "csim-v" ||
                           engine == "csim-m" || engine == "csim";
  if (threads > 1 && !csim_engine) {
    throw Error("--threads supports the csim engines only");
  }
  if (args.has("batch") && !csim_engine) {
    throw Error("--batch supports the csim engines only");
  }
  if ((args.has("rebalance") || args.has("rebalance-threshold")) &&
      !csim_engine) {
    throw Error("--rebalance supports the csim engines only");
  }
  const RebalancePolicy rpol = parse_rebalance(args);

  const bool campaign_mode =
      args.has("checkpoint") || args.has("checkpoint-every") ||
      args.has("resume") || args.has("max-elements") || args.has("retries") ||
      args.has("deadline-ms") || args.has("backoff-ms") ||
      args.has("inject") || args.has("halt-after") || args.has("sleep-ms");
  if (campaign_mode) {
    if (!csim_engine) {
      throw Error("campaign flags support the csim engines only");
    }
    if (args.has("transition") && engine == "csim-m") {
      throw Error("--transition requires a csim engine");
    }
    return run_campaign(args, c, engine, ff_init, threads, batch, tests);
  }

  // --trace and --timeline/--progress route through the sharded driver
  // (one track per shard, one sample per vector); with --threads=1 that
  // driver *is* the plain engine, so both are available for every csim
  // run.  Output paths are probed up front (obs::ensure_writable) so a
  // typo'd path fails before the simulation, not after it.
  const std::string trace_path = args.get("trace");
  if (!trace_path.empty() && !csim_engine) {
    throw Error("--trace supports the csim engines only");
  }
  if (!trace_path.empty()) obs::ensure_writable(trace_path, "trace");
  obs::TraceEmitter trace;
  obs::TraceEmitter* tr = trace_path.empty() ? nullptr : &trace;

  const std::string timeline_path = args.get("timeline");
  const bool progress = args.has("progress");
  const std::string stats_path = args.get("stats-json");
  if ((!timeline_path.empty() || progress) && !csim_engine) {
    throw Error("--timeline/--progress support the csim engines only");
  }
  if (!stats_path.empty()) obs::ensure_writable(stats_path, "stats");
  obs::Timeline timeline(4096, args.get_u64("sample-every", 1));
  obs::ProgressMeter meter(tests.total_vectors());
  obs::Timeline* tl = nullptr;
  if (!timeline_path.empty()) {
    obs::ensure_writable(timeline_path, "timeline");
    timeline.stream_to(timeline_path);
    tl = &timeline;
  }
  if (progress) {
    meter.attach(timeline);
    tl = &timeline;
  }
  // --stats-json fills its "timeline" block from the same sampler (csim
  // engines only; the baselines have no sharded driver to sample).
  if (!stats_path.empty() && csim_engine) tl = &timeline;

  const bool sharded =
      threads > 1 || batch > 1 || tr != nullptr || tl != nullptr;

  RunResult r;
  if (args.has("transition")) {
    if (engine != "csim-mv" && engine != "csim-v" && engine != "csim") {
      throw Error("--transition requires a csim engine");
    }
    const FaultUniverse u = FaultUniverse::all_transition(c);
    r = sharded ? run_csim_transition_sharded(c, u, tests, threads, ff_init,
                                              engine != "csim", tr, batch,
                                              tl, rpol)
                : run_csim_transition(c, u, tests, ff_init,
                                      engine != "csim");
  } else if (args.has("sample")) {
    const FaultUniverse full = FaultUniverse::all_stuck_at(c);
    const SubUniverse sub = restrict_universe(
        full, sample_faults(full, args.get_u64("sample", 1000),
                            args.get_u64("seed", 1) + 1));
    r = sharded ? run_csim_sharded(c, sub.universe, tests, CsimVariant::V,
                                   threads, ff_init, true, tr, batch, tl,
                                   rpol)
                : run_csim(c, sub.universe, tests, CsimVariant::V, ff_init);
    r.sim_name += " (sampled " + std::to_string(sub.universe.size()) + "/" +
                  std::to_string(full.size()) + ")";
  } else if (args.has("collapse")) {
    const FaultUniverse full = FaultUniverse::all_stuck_at(c);
    const auto rep = collapse_equivalent(c, full);
    const SubUniverse reps = representative_universe(full, rep);
    Stopwatch sw;
    ShardedOptions sopt;
    sopt.num_threads = threads;
    sopt.batch_width = batch;
    sopt.rebalance = rpol;
    ShardedSim sim(c, reps.universe, sopt);
    if (tr != nullptr) sim.set_trace(tr);
    if (tl != nullptr) sim.set_timeline(tl);
    sim.run(tests, ff_init);
    r.cpu_s = sw.seconds();
    r.threads = sim.num_shards();
    r.batch = batch;
    r.sim_name = "csim-V (collapsed " + std::to_string(reps.universe.size()) +
                 " classes)";
    r.mem_bytes = sim.bytes() + c.bytes();
    r.cov = summarize(expand_to_classes(sim.status(), reps, rep));
    r.stats = sim.stats();
    r.activity = r.stats.total.elements_evaluated;
  } else {
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const auto run_variant = [&](CsimVariant v) {
      return sharded ? run_csim_sharded(c, u, tests, v, threads, ff_init,
                                        true, tr, batch, tl, rpol)
                     : run_csim(c, u, tests, v, ff_init);
    };
    if (engine == "csim-mv") {
      r = run_variant(CsimVariant::MV);
    } else if (engine == "csim-v") {
      r = run_variant(CsimVariant::V);
    } else if (engine == "csim-m") {
      r = run_variant(CsimVariant::M);
    } else if (engine == "csim") {
      r = run_variant(CsimVariant::Plain);
    } else if (engine == "proofs") {
      r = run_proofs(c, u, tests, ff_init);
    } else if (engine == "serial") {
      r = run_serial(c, u, tests, ff_init);
    } else if (engine == "deductive") {
      const Val init = ff_init == Val::X ? Val::Zero : ff_init;
      DeductiveSim sim(c, u, init);
      Stopwatch sw;
      for (const PatternSet& seq : tests.sequences()) {
        sim.reset(init);
        for (std::size_t i = 0; i < seq.size(); ++i) {
          sim.apply_vector(seq[i]);
        }
      }
      r.sim_name = "deductive";
      r.cpu_s = sw.seconds();
      r.mem_bytes = sim.bytes() + c.bytes();
      r.cov = sim.coverage();
    } else {
      throw Error("unknown engine '" + engine + "'");
    }
  }

  meter.finish();
  std::printf("%s on %s: %zu vectors in %zu sequences\n", r.sim_name.c_str(),
              c.name().c_str(), tests.total_vectors(),
              tests.num_sequences());
  std::printf("coverage  %.2f%% (%zu/%zu hard, %zu potential)\n", r.cov.pct(),
              r.cov.hard, r.cov.total, r.cov.potential);
  std::printf("cpu       %.3fs\n", r.cpu_s);
  std::printf("memory    %s\n", format_bytes(r.mem_bytes).c_str());
  if (r.threads > 1) {
    std::printf("threads   %u fault shards over one shared model\n",
                r.threads);
  }
  if (r.batch > 1) {
    std::printf("batch     %u pattern lanes per packed good-machine pass\n",
                r.batch);
  }
  if (r.stats.rebalances > 0) {
    std::printf("rebal     %llu repartitions, %llu faults (%llu elements) "
                "migrated\n",
                static_cast<unsigned long long>(r.stats.rebalances),
                static_cast<unsigned long long>(r.stats.faults_migrated),
                static_cast<unsigned long long>(r.stats.elements_migrated));
  }
  if (args.has("verbose")) {
    const std::string_view isa = simd::active_isa_name();
    std::printf("isa       %.*s vector kernels, %u-bit\n",
                static_cast<int>(isa.size()), isa.data(),
                simd::active_simd_width_bits());
    std::printf("activity  %llu element/word evaluations\n",
                static_cast<unsigned long long>(r.activity));
    if (!r.stats.per_engine.empty()) print_shard_stats(r);
  }
  if (tr != nullptr) {
    trace.save(trace_path);
    std::printf("trace     %s (%zu events, chrome://tracing)\n",
                trace_path.c_str(), trace.num_events());
  }
  if (!timeline_path.empty()) {
    timeline.flush();
    std::printf("timeline  %s (%llu samples)\n", timeline_path.c_str(),
                static_cast<unsigned long long>(timeline.recorded()));
  }
  if (!stats_path.empty()) {
    RunMetadata meta;
    meta.circuit = c.name();
    meta.engine = engine;
    meta.mode = args.has("transition") ? "transition" : "stuck-at";
    meta.threads = threads;
    meta.seed = args.get_u64("seed", 1);
    meta.vectors = tests.total_vectors();
    meta.sequences = tests.num_sequences();
    meta.ff_init = ff_init == Val::Zero ? "0" : "X";
    save_run_stats_json(stats_path, meta, r, tl);
    std::printf("stats     %s\n", stats_path.c_str());
  }
  return 0;
}

// Exit codes for `cfs connect`: structured service refusals map to
// distinct codes so scripts can branch without parsing stderr.
//   0 session done   1 error/failed   3 refused or shed   4 halted/draining
int connect_error_exit(const std::string& code, const std::string& message) {
  std::fprintf(stderr, "cfs connect: %s: %s\n", code.c_str(),
               message.c_str());
  if (code == "admission_refused" || code == "backpressure" ||
      code == "deadline_exceeded") {
    return 3;
  }
  if (code == "draining") return 4;
  return 1;
}

// `cfs connect <socket>` -- the cfsd client.  Default action: open (or
// reconnect to) a session, stream its updates, and print the final digest.
// With --status/--cancel/--stats/--shutdown, perform that single op.
int cmd_connect(const Args& args) {
  args.allow_only({"session", "circuit", "tests", "random", "seed", "mode",
                   "threads", "batch", "elements", "reset0", "wait-ms",
                   "quiet", "status", "cancel", "stats", "shutdown"});
  const std::string sock = args.positional().at(0);
  const bool quiet = args.has("quiet");
  svc::Client cli;
  cli.connect(sock);

  const auto one_op = [&](const std::string& payload) -> int {
    const svc::JsonValue resp = cli.call(payload);
    if (!resp.opt_bool("ok", false)) {
      return connect_error_exit(resp.opt_string("error", "internal"),
                                resp.opt_string("message", "?"));
    }
    std::printf("%s\n", resp.dump().c_str());
    return 0;
  };
  if (args.has("stats")) return one_op("{\"op\":\"stats\"}");
  if (args.has("shutdown")) return one_op("{\"op\":\"shutdown\"}");
  const std::string session = args.get("session");
  if (session.empty()) throw Error("--session=NAME is required");
  const std::string esc = svc::json_escape(session);
  if (args.has("status")) {
    return one_op("{\"op\":\"status\",\"session\":\"" + esc + "\"}");
  }
  if (args.has("cancel")) {
    return one_op("{\"op\":\"cancel\",\"session\":\"" + esc + "\"}");
  }

  // Open: ship the circuit and suite inline so the daemon is
  // self-contained (and can persist them for crash recovery).  Both
  // serializations are deterministic, so reconnecting after a daemon
  // restart reproduces the same spec fingerprint.
  const Circuit c = load_circuit(args.get("circuit", "s298"));
  const std::string circuit_text = write_bench(c);
  TestSuite tests;
  if (args.has("tests")) {
    tests = TestSuite::load(args.get("tests"));
  } else {
    tests = TestSuite(PatternSet::random(c.inputs().size(),
                                         args.get_u64("random", 256),
                                         args.get_u64("seed", 1)));
  }
  std::string req = "{\"op\":\"open\",\"session\":\"" + esc + "\"";
  req += ",\"circuit\":\"" + svc::json_escape(circuit_text) + "\"";
  req += ",\"tests\":\"" + svc::json_escape(tests.to_text()) + "\"";
  req += ",\"mode\":\"" + svc::json_escape(args.get("mode", "sa")) + "\"";
  req += ",\"threads\":" + std::to_string(args.get_u64("threads", 1));
  req += ",\"batch\":" + std::to_string(args.get_u64("batch", 1));
  if (args.has("elements")) {
    req += ",\"elements\":" + std::to_string(args.get_u64("elements", 0));
  }
  if (args.has("reset0")) req += ",\"reset0\":true";
  if (args.has("wait-ms")) {
    req += ",\"wait_ms\":" + std::to_string(args.get_u64("wait-ms", 0));
  }
  req += "}";
  svc::JsonValue resp = cli.call(req);
  if (!resp.opt_bool("ok", false)) {
    return connect_error_exit(resp.opt_string("error", "internal"),
                              resp.opt_string("message", "?"));
  }
  if (!quiet) {
    std::printf("session %s %s%s\n", session.c_str(),
                resp.opt_string("state", "?").c_str(),
                resp.opt_bool("resumed", false) ? " (resumed)" : "");
  }

  // Stream updates until the session leaves Running.  A slow terminal
  // never slows the campaign: the daemon's ring skips us ahead and
  // reports how much we missed.
  std::uint64_t after = 0;
  std::string state = resp.opt_string("state", "running");
  while (state == "running" || state == "queued") {
    resp = cli.call("{\"op\":\"watch\",\"session\":\"" + esc +
                    "\",\"after\":" + std::to_string(after) +
                    ",\"wait_ms\":1000}");
    if (!resp.opt_bool("ok", false)) {
      return connect_error_exit(resp.opt_string("error", "internal"),
                                resp.opt_string("message", "?"));
    }
    const std::uint64_t skipped = resp.opt_u64("skipped", 0);
    if (skipped != 0 && !quiet) {
      std::printf("  (skipped %llu updates)\n",
                  static_cast<unsigned long long>(skipped));
    }
    if (const svc::JsonValue* ups = resp.find("updates")) {
      for (const svc::JsonValue& u : ups->as_array()) {
        if (const svc::JsonValue* sample = u.find("update");
            sample != nullptr && !quiet) {
          if (const svc::JsonValue* sm = sample->find("sample")) {
            std::printf("  vec %llu  hard %llu  potential %llu\n",
                        static_cast<unsigned long long>(
                            sm->opt_u64("vec", 0)),
                        static_cast<unsigned long long>(
                            sm->opt_u64("hard", 0)),
                        static_cast<unsigned long long>(
                            sm->opt_u64("potential", 0)));
          }
        }
      }
    }
    after = resp.opt_u64("next", after);
    state = resp.opt_string("state", state);
  }

  resp = cli.call("{\"op\":\"status\",\"session\":\"" + esc + "\"}");
  if (!resp.opt_bool("ok", false)) {
    return connect_error_exit(resp.opt_string("error", "internal"),
                              resp.opt_string("message", "?"));
  }
  state = resp.opt_string("state", "?");
  if (state == "done") {
    std::printf("session %s done\n", session.c_str());
    std::printf("coverage  %llu/%llu hard, %llu potential\n",
                static_cast<unsigned long long>(resp.opt_u64("hard", 0)),
                static_cast<unsigned long long>(resp.opt_u64("total", 0)),
                static_cast<unsigned long long>(
                    resp.opt_u64("potential", 0)));
    std::printf("digest    %s\n", resp.opt_string("digest", "?").c_str());
    return 0;
  }
  if (state == "halted") {
    std::printf("session %s halted (resumable; reconnect to continue)\n",
                session.c_str());
    return 4;
  }
  std::fprintf(stderr, "cfs connect: session %s %s: %s\n", session.c_str(),
               state.c_str(), resp.opt_string("message", "?").c_str());
  return 1;
}

int usage() {
  std::fputs(
      "usage: cfs <command> <circuit> [options]\n"
      "commands:\n"
      "  stats    <circuit>                     circuit statistics\n"
      "  gen      <benchmark> [--out=F]         emit synthetic .bench\n"
      "  macro    <circuit> [--cap=N]           macro extraction report\n"
      "  collapse <circuit>                     fault collapsing report\n"
      "  tgen     <circuit> [--out=F] [--budget=N] [--seed=N] [--reset0]\n"
      "  compact  <circuit> --tests=F [--out=F2] [--reset0]\n"
      "  sim      <circuit> [--engine=E] [--tests=F|--random=N] [--seed=N]\n"
      "           [--reset0] [--transition] [--verbose] [--threads=N]\n"
      "           [--batch=N|auto] [--simd=auto|off|sse4.2|avx2|neon]\n"
      "           [--sample=N | --collapse] [--trace=F]\n"
      "           [--stats-json=F] [--timeline=F] [--progress]\n"
      "           [--sample-every=N]\n"
      "           [--rebalance=off|auto|N] [--rebalance-threshold=R]\n"
      "           campaign flags (resilient path):\n"
      "           [--checkpoint=F] [--checkpoint-every=N] [--resume=F]\n"
      "           [--max-elements=K] [--retries=N] [--deadline-ms=N]\n"
      "           [--backoff-ms=N] [--inject=SPEC] [--halt-after=N]\n"
      "           [--sleep-ms=N]\n"
      "  connect  <socket> --session=NAME       talk to a cfsd daemon\n"
      "           [--circuit=C] [--tests=F|--random=N] [--seed=N]\n"
      "           [--mode=sa|sa-macro|tr] [--threads=N] [--batch=N]\n"
      "           [--elements=N] [--reset0] [--wait-ms=N] [--quiet]\n"
      "           [--status | --cancel | --stats | --shutdown]\n"
      "engines: csim-mv csim-v csim-m csim proofs serial deductive\n"
      "<circuit>: a .bench path, or a built-in profile benchmark name\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (args.positional().empty()) return usage();
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "macro") return cmd_macro(args);
    if (cmd == "collapse") return cmd_collapse(args);
    if (cmd == "tgen") return cmd_tgen(args);
    if (cmd == "compact") return cmd_compact(args);
    if (cmd == "sim") return cmd_sim(args);
    if (cmd == "connect") return cmd_connect(args);
    return usage();
  } catch (const cfs::Error& e) {
    std::fprintf(stderr, "cfs: %s\n", e.what());
    return 1;
  }
}
