#!/usr/bin/env python3
"""Pin deterministic telemetry counters against a checked-in expectation.

The single-threaded engine's merge order is a pure function of the circuit,
the fault universe, and the test set, so its work counters (elements
allocated / reused / freed, ...) are bit-reproducible.  CI runs a fixed
s298 test set and compares `cfs sim --stats-json` output against
tools/expected_s298_counters.json: any drift in the pinned counters means
the merge path changed behaviour -- intentionally (regenerate the
expectation and say why in the commit) or not (a regression).

Usage: check_counters.py <stats.json> <expected.json>
"""
import json
import sys


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        stats = json.load(f)
    with open(sys.argv[2]) as f:
        expected = json.load(f)

    errors = []
    counters = stats.get("totals", {}).get("counters", {})
    for key, want in sorted(expected.get("counters", {}).items()):
        got = counters.get(key)
        if got != want:
            errors.append(f"counters.{key}: expected {want}, got {got}")
    for key, want in sorted(expected.get("deterministic", {}).items()):
        got = stats.get("deterministic", {}).get(key)
        if got != want:
            errors.append(f"deterministic.{key}: expected {want}, got {got}")
    for key, want in sorted(expected.get("coverage", {}).items()):
        got = stats.get("coverage", {}).get(key)
        if got != want:
            errors.append(f"coverage.{key}: expected {want}, got {got}")

    if errors:
        print(f"{sys.argv[1]}: counter pin FAILED")
        for e in errors:
            print("  " + e)
        sys.exit(1)
    n = sum(len(expected.get(k, {}))
            for k in ("counters", "deterministic", "coverage"))
    print(f"{sys.argv[1]}: {n} pinned values match {sys.argv[2]}")


if __name__ == "__main__":
    main()
