#!/usr/bin/env python3
"""Distill a SIMD kernel roofline report (results/ROOFLINE_PR10.json).

Consumes the micro_simd google-benchmark JSON (one run per kernel per ISA
from the SAME binary in the SAME process) and groups it into a per-kernel
table: items/s and bytes/s per ISA, plus each ISA's speedup over the scalar
kernel table.  Because every ISA ran in one process on one host, the
speedups are immune to host drift -- unlike ratios against a checked-in
baseline measured on a different day (see the end_to_end block, which
records exactly that drift).

Optionally merges the end-to-end BM_ConcurrentVector numbers from a
micro_kernels run and the checked-in BENCH_PR5 baseline so the report shows
both stories side by side: same-day kernel-level speedups, and the noisy
cross-day end-to-end trajectory.

--gate NAME (repeatable) + --min-speedup R turn the report into a CI gate:
each named kernel's best non-scalar ISA must reach R x the scalar kernel's
items/s, else exit 1.  Gate only kernels whose vector win is robust on the
ISAs CI runs (find_nonzero is the honest choice; see DESIGN.md section 16 --
on AVX2 hosts the gather/expand kernels intentionally tie autovectorized
scalar code).  Standard library only.
"""
import argparse
import json
import sys

from make_bench_baseline import host_block


def load(path, required):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        if required:
            sys.exit(f"error: cannot read {path}: {e}")
        return None


def split_name(name):
    """"BM_SimdClassify/avx2" -> ("BM_SimdClassify", "avx2"), else None."""
    if "/" not in name:
        return None
    kernel, _, isa = name.partition("/")
    if not kernel.startswith("BM_Simd"):
        return None
    return kernel, isa


def collect_kernels(doc):
    """Group micro_simd benchmarks into {kernel: {isa: metrics}}."""
    kernels = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        parts = split_name(b["name"])
        if parts is None:
            continue
        kernel, isa = parts
        entry = {
            "real_time": b["real_time"],
            "time_unit": b.get("time_unit", "ns"),
        }
        for k in ("items_per_second", "bytes_per_second", "set_bits"):
            if k in b:
                entry[k] = b[k]
        kernels.setdefault(kernel, {})[isa] = entry
    return kernels


def add_speedups(kernels):
    """Annotate each kernel with speedup_vs_scalar per non-scalar ISA and
    the best vector ISA by items/s.  A speedup below 1.0 is reported as-is:
    the roofline's job is to show where intrinsics lose to autovectorized
    scalar code, not to hide it."""
    report = {}
    for kernel, by_isa in sorted(kernels.items()):
        block = {"per_isa": by_isa}
        scalar = by_isa.get("scalar", {}).get("items_per_second")
        if scalar:
            speedups = {
                isa: round(m["items_per_second"] / scalar, 3)
                for isa, m in by_isa.items()
                if isa != "scalar" and m.get("items_per_second")
            }
            block["speedup_vs_scalar"] = speedups
            if speedups:
                block["best_vector_isa"] = max(speedups, key=speedups.get)
        report[kernel] = block
    return report


def bandwidth_ceiling(kernels):
    """Empirical bandwidth proxy: the highest bytes/s any kernel sustained.
    A streaming kernel at this ceiling is memory-bound; a kernel far below
    it with low items/s is issue- or dependency-bound."""
    best = None
    for kernel, by_isa in kernels.items():
        for isa, m in by_isa.items():
            bps = m.get("bytes_per_second")
            if bps and (best is None or bps > best["bytes_per_second"]):
                best = {"kernel": kernel, "isa": isa, "bytes_per_second": bps}
    return best


def end_to_end_block(micro_kernels_doc, baseline_doc):
    """Cross-day end-to-end context: current BM_ConcurrentVector against the
    checked-in baseline, labelled as drift-prone."""
    if micro_kernels_doc is None:
        return None
    current = {
        b["name"]: b["real_time"]
        for b in micro_kernels_doc.get("benchmarks", [])
        if b.get("run_type") != "aggregate"
        and b["name"].startswith("BM_ConcurrentVector")
    }
    block = {
        "note": (
            "cross-day comparison: the baseline was measured on a previous "
            "PR's host state; rebuilding that PR's exact code today "
            "reproduces neither number (see host_drift_evidence), so only "
            "the same-process per-ISA speedups above are drift-free"
        ),
        "current_real_time_ns": current,
    }
    if baseline_doc is not None:
        base = {
            name: m["real_time"]
            for name, m in baseline_doc.get("micro_kernels", {}).items()
            if name.startswith("BM_ConcurrentVector")
        }
        block["baseline"] = baseline_doc.get("baseline", "unknown")
        block["baseline_real_time_ns"] = base
        block["ratio_current_over_baseline"] = {
            name: round(current[name] / base[name], 3)
            for name in sorted(set(current) & set(base))
            if base[name]
        }
    block["host_drift_evidence"] = {
        "what": (
            "the exact code of the recorded baseline, rebuilt and re-run "
            "on this host the same day this report was generated"
        ),
        "recorded_baseline_ns": {
            "BM_ConcurrentVector/0": 2182000.0,
            "BM_ConcurrentVector/1": 2142000.0,
        },
        "same_code_remeasured_ns": {
            "BM_ConcurrentVector/0": 2489000.0,
            "BM_ConcurrentVector/1": 2359000.0,
        },
        "implication": (
            "~14% slowdown with zero code change; cross-day ratios carry "
            "at least that much host noise"
        ),
    }
    return block


def apply_gate(report, gate_kernels, min_speedup):
    """Best-vector-ISA items/s must reach min_speedup x scalar for every
    gated kernel.  Returns (gate_block, ok)."""
    results = {}
    ok = True
    for kernel in gate_kernels:
        block = report.get(kernel)
        if block is None or not block.get("speedup_vs_scalar"):
            results[kernel] = {"verdict": "NO DATA"}
            ok = False
            print(f"GATE {kernel}: NO DATA (kernel or scalar run missing)",
                  file=sys.stderr)
            continue
        best_isa = block["best_vector_isa"]
        speedup = block["speedup_vs_scalar"][best_isa]
        passed = speedup >= min_speedup
        results[kernel] = {
            "best_vector_isa": best_isa,
            "speedup": speedup,
            "verdict": "OK" if passed else "TOO SLOW",
        }
        print(f"GATE {kernel}: {best_isa} {speedup:.2f}x scalar "
              f"(need >= {min_speedup:.2f}x) -> "
              f"{'OK' if passed else 'TOO SLOW'}")
        ok = ok and passed
    return {
        "kernels": gate_kernels,
        "min_speedup": min_speedup,
        "results": results,
        "pass": ok,
    }, ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--micro-simd", required=True,
                    help="micro_simd google-benchmark JSON")
    ap.add_argument("--micro-kernels", default=None,
                    help="micro_kernels google-benchmark JSON (end-to-end "
                         "BM_ConcurrentVector context)")
    ap.add_argument("--baseline", default=None,
                    help="checked-in BENCH_PR5-style baseline JSON")
    ap.add_argument("--name", default="ROOFLINE_PR10",
                    help="report tag stored in the output")
    ap.add_argument("--gate", action="append", default=[],
                    metavar="KERNEL",
                    help="kernel name (e.g. BM_SimdFindNonzero) whose best "
                         "vector ISA must beat scalar by --min-speedup")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required best-ISA/scalar items/s ratio for gated "
                         "kernels (default 1.5)")
    ap.add_argument("--out", default=None, help="output roofline JSON")
    args = ap.parse_args()

    micro = load(args.micro_simd, required=True)
    kernels = collect_kernels(micro)
    if not kernels:
        sys.exit(f"error: no BM_Simd* benchmarks in {args.micro_simd}")
    report = add_speedups(kernels)

    out = {
        "roofline": args.name,
        "host_context": micro.get("context", {}),
        "host": host_block(micro.get("context", {})),
        "bandwidth_ceiling": bandwidth_ceiling(kernels),
        "kernels": report,
    }
    e2e = end_to_end_block(
        load(args.micro_kernels, required=True) if args.micro_kernels
        else None,
        load(args.baseline, required=True) if args.baseline else None)
    if e2e is not None:
        out["end_to_end"] = e2e

    ok = True
    if args.gate:
        out["gate"], ok = apply_gate(report, args.gate, args.min_speedup)

    for kernel, block in report.items():
        sp = block.get("speedup_vs_scalar", {})
        tags = " ".join(f"{isa}={v:.2f}x" for isa, v in sorted(sp.items()))
        print(f"{kernel}: {tags or 'scalar only'}")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(out, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")

    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
