#!/usr/bin/env python3
"""Distill a timeline JSONL stream into a shard-imbalance report.

Reads the per-vector samples `cfs sim --timeline=F` streams (header line
plus one JSON object per sampled vector, each carrying a per-shard
`shards` array of live-fault weight / pool population / latency) and
reduces them to the evidence the dynamic-rebalancing ROADMAP item needs:
how unevenly the static fault partition loads the shards, and how that
imbalance drifts as detected faults drop out of the lists.

Imbalance ratio for one sample: the heaviest shard's weight divided by
the balanced share (sum / num_shards).  1.0 = perfectly even; K = one
shard carries everything.  Reported for the deterministic live-fault
weight (thread-invariant, the quantity a rebalancer would partition on)
and for wall-clock shard latency (host-dependent corroboration).

Usage:
  make_imbalance_report.py TIMELINE.jsonl --out REPORT.json \
      [--window N] [--circuit NAME] [--meta KEY=VALUE ...]

--window=N adds a "window" block summarizing only the last N samples.
The full-run medians average over the early vectors where any partition
is still near-even; the tail window isolates the late-campaign state --
the skew a static partition degrades into, or the ~1.0 a dynamic
rebalancer holds it at.

Stdlib only; exits 1 on malformed input.
"""
import argparse
import json
import sys


def ratio(weights):
    total = sum(weights)
    if total == 0:
        return 1.0
    return max(weights) * len(weights) / total


def quantile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    i = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[i]


def summarize(samples, num_shards):
    per_shard = []
    for k in range(num_shards):
        live = [s["shards"][k]["live_faults"] for s in samples]
        elems = [s["shards"][k]["live_elements"] for s in samples]
        lat = [s["shards"][k]["latency_us"] for s in samples]
        per_shard.append({
            "shard": k,
            "first_live_faults": live[0],
            "final_live_faults": live[-1],
            "mean_live_faults": sum(live) / len(live),
            "mean_live_elements": sum(elems) / len(elems),
            "total_latency_us": sum(lat),
        })

    live_ratios = sorted(
        ratio([sh["live_faults"] for sh in s["shards"]]) for s in samples)
    elem_ratios = sorted(
        ratio([sh["live_elements"] for sh in s["shards"]]) for s in samples)
    lat_ratios = sorted(
        ratio([sh["latency_us"] for sh in s["shards"]]) for s in samples)
    first = samples[0]
    last = samples[-1]
    return per_shard, {
        # Fault count per shard: what a static partitioner equalizes.
        "live_faults": {
            "first_vector": ratio([sh["live_faults"]
                                   for sh in first["shards"]]),
            "final_vector": ratio([sh["live_faults"]
                                   for sh in last["shards"]]),
            "median": quantile(live_ratios, 0.5),
            "p90": quantile(live_ratios, 0.9),
            "max": live_ratios[-1],
        },
        # Pool population per shard: the actual concurrent-machinery work
        # weight -- equal fault counts can still load shards unevenly.
        "live_elements": {
            "first_vector": ratio([sh["live_elements"]
                                   for sh in first["shards"]]),
            "final_vector": ratio([sh["live_elements"]
                                   for sh in last["shards"]]),
            "median": quantile(elem_ratios, 0.5),
            "p90": quantile(elem_ratios, 0.9),
            "max": elem_ratios[-1],
        },
        "latency_us": {
            "median": quantile(lat_ratios, 0.5),
            "p90": quantile(lat_ratios, 0.9),
            "max": lat_ratios[-1],
        },
    }


def main(argv):
    ap = argparse.ArgumentParser(
        description="shard-imbalance report from a timeline JSONL stream")
    ap.add_argument("timeline", help="JSONL stream from cfs sim --timeline=F")
    ap.add_argument("--out", required=True, help="report JSON path")
    ap.add_argument("--window", type=int, default=0, metavar="N",
                    help="also summarize only the last N samples")
    ap.add_argument("--circuit", default="", help="circuit name for the meta")
    ap.add_argument("--meta", action="append", default=[],
                    metavar="KEY=VALUE", help="extra meta fields (repeat)")
    args = ap.parse_args(argv[1:])

    header = None
    samples = []
    with open(args.timeline) as f:
        for n, line in enumerate(f, 1):
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"FAIL {args.timeline}:{n}: {e}", file=sys.stderr)
                return 1
            if "timeline" in doc:
                header = doc  # stream-open marker; last one wins on resume
            elif "vec" in doc:
                samples.append(doc)
    if not samples:
        print(f"FAIL {args.timeline}: no samples", file=sys.stderr)
        return 1
    num_shards = len(samples[0]["shards"])
    if num_shards == 0 or any(len(s["shards"]) != num_shards
                              for s in samples):
        print(f"FAIL {args.timeline}: inconsistent shards arrays",
              file=sys.stderr)
        return 1

    per_shard, imbalance = summarize(samples, num_shards)
    meta = {"circuit": args.circuit, "num_shards": num_shards,
            "vectors_sampled": len(samples),
            "first_vec": samples[0]["vec"], "last_vec": samples[-1]["vec"],
            "every": header["every"] if header else 1}
    for kv in args.meta:
        key, _, value = kv.partition("=")
        meta[key] = value
    report = {
        "meta": meta,
        "coverage": {
            "hard": samples[-1]["hard"],
            "potential": samples[-1]["potential"],
            "live_faults": samples[-1]["live_faults"],
            "rebalances": samples[-1].get("rebalances", 0),
        },
        "per_shard": per_shard,
        "imbalance": imbalance,
    }
    if args.window > 0:
        tail = samples[-args.window:]
        tail_per_shard, tail_imbalance = summarize(tail, num_shards)
        report["window"] = {
            "size": len(tail),
            "first_vec": tail[0]["vec"],
            "last_vec": tail[-1]["vec"],
            "per_shard": tail_per_shard,
            "imbalance": tail_imbalance,
        }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    live = imbalance["live_faults"]
    print(f"OK {args.out}: {num_shards} shards, {len(samples)} samples, "
          f"live-fault imbalance first {live['first_vector']:.2f} -> "
          f"final {live['final_vector']:.2f} (max {live['max']:.2f})")
    if args.window > 0:
        w = report["window"]["imbalance"]
        print(f"   last {report['window']['size']} samples: live-element "
              f"skew median {w['live_elements']['median']:.2f}, latency "
              f"skew median {w['latency_us']['median']:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
