#!/bin/bash
# Resilience integration test for the campaign CLI (`cfs sim` with campaign
# flags).  Exercises the three robustness pillars end to end, from outside
# the process:
#
#   1. kill -9 mid-campaign, resume from the last checkpoint: the resumed
#      run's digest (coverage + detection order) must equal an
#      uninterrupted run's.  The killed campaign runs with --rebalance=3
#      against checkpoints every 5 vectors, so kills land between a
#      dynamic repartition and the next checkpoint -- the checkpoint is
#      partition-agnostic and the resumed digest must not care.
#   2. forced shard failure (--inject): contained, retried exactly once,
#      result unchanged.
#   3. stalled shard (--inject=stall) under the deadline watchdog: slice
#      requeued onto a rebuilt engine, result unchanged.
#   4. element budget far below the natural peak: multi-pass degradation,
#      result unchanged.
#
# Phase 1 also streams campaign telemetry (--timeline): because the stream
# is flushed only at checkpoint boundaries, the kill -9 must leave a
# well-formed JSONL file ending before the checkpoint the resume restarts
# from, and the resumed campaign must append a contiguous, duplicate-free
# continuation covering every vector exactly once.
#
# Usage: kill_resume_test.sh /path/to/cfs
CFS=${1:?usage: kill_resume_test.sh /path/to/cfs}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "kill_resume_test: FAIL: $*" >&2
  exit 1
}

digest_of() { awk '/^digest/{print $2}' "$1"; }

# Common campaign: two-shard csim-MV over a fixed random suite.
ARGS=(sim s298 --random=96 --seed=9 --threads=2)

# --- reference: uninterrupted campaign ------------------------------------
"$CFS" "${ARGS[@]}" --retries=0 > "$TMP/full.txt" ||
  fail "reference campaign failed"
REF=$(digest_of "$TMP/full.txt")
[ -n "$REF" ] || fail "no digest in reference output"

# An uninterrupted campaign with dynamic rebalancing: repartitioning only
# moves faults between shards, so the digest must match the static run's.
"$CFS" "${ARGS[@]}" --retries=0 --rebalance=3 > "$TMP/rebal.txt" ||
  fail "rebalanced campaign failed"
[ "$(digest_of "$TMP/rebal.txt")" = "$REF" ] ||
  fail "rebalanced digest differs from static run"
grep -q 'rebalances=' "$TMP/rebal.txt" || {
  cat "$TMP/rebal.txt" >&2
  fail "rebalanced campaign reported no rebal line"
}

# --- 1. kill -9 mid-run, then resume --------------------------------------
# --sleep-ms paces the campaign (~25ms/vector) so the kill reliably lands
# mid-run; checkpoints land every 5 vectors, repartitions every 3, so the
# kill falls between a rebalance and the next checkpoint.
"$CFS" "${ARGS[@]}" --checkpoint="$TMP/ck.bin" --checkpoint-every=5 \
  --rebalance=3 \
  --timeline="$TMP/tl.jsonl" --sleep-ms=25 > "$TMP/killed.txt" 2>&1 &
PID=$!
sleep 1.2
kill -9 "$PID" 2> /dev/null || {
  cat "$TMP/killed.txt" >&2
  fail "campaign finished before the kill; raise --sleep-ms"
}
wait "$PID" 2> /dev/null
[ -f "$TMP/ck.bin" ] || fail "no checkpoint on disk after the kill"

# The kill landed between flushes: the stream on disk must still be pure
# well-formed JSONL (whole lines only, nothing torn).
[ -s "$TMP/tl.jsonl" ] || fail "no timeline stream on disk after the kill"
python3 - "$TMP/tl.jsonl" <<'EOF' || fail "killed timeline stream is not well-formed JSONL"
import json, sys
for line in open(sys.argv[1]):
    json.loads(line)
EOF

# Resume under a *different* policy (auto instead of every-3): checkpoints
# carry no partition state, so the resumed leg may rebalance on its own
# schedule and the digest must still match.
"$CFS" "${ARGS[@]}" --resume="$TMP/ck.bin" --timeline="$TMP/tl.jsonl" \
  --rebalance=auto --rebalance-threshold=1.05 \
  > "$TMP/resumed.txt" || fail "resume failed"
RES=$(digest_of "$TMP/resumed.txt")
[ "$RES" = "$REF" ] || {
  cat "$TMP/resumed.txt" >&2
  fail "kill+resume digest $RES != uninterrupted $REF"
}

# Killed stream + resumed continuation: every vector sampled exactly once,
# in order, with no gap and no overlap at the checkpoint seam.
python3 - "$TMP/tl.jsonl" <<'EOF' || fail "kill+resume timeline stream is not a contiguous sample series"
import json, sys
vecs = []
for line in open(sys.argv[1]):
    doc = json.loads(line)
    if "vec" in doc:
        vecs.append(doc["vec"])
assert vecs == list(range(96)), f"expected vec 0..95, got {len(vecs)} samples"
EOF

# --- 2. injected shard exception is contained -----------------------------
"$CFS" "${ARGS[@]}" --retries=3 --inject=throw:1:7 > "$TMP/inject.txt" ||
  fail "injected-throw campaign failed"
[ "$(digest_of "$TMP/inject.txt")" = "$REF" ] ||
  fail "injected-throw digest differs from clean run"
grep -q 'retries=1 requeues=0' "$TMP/inject.txt" || {
  cat "$TMP/inject.txt" >&2
  fail "expected exactly one shard retry and no requeue"
}

# --- 3. stalled shard is requeued by the watchdog -------------------------
"$CFS" "${ARGS[@]}" --retries=3 --deadline-ms=150 \
  --inject=stall:0:4:2000 > "$TMP/stall.txt" ||
  fail "stalled-shard campaign failed"
[ "$(digest_of "$TMP/stall.txt")" = "$REF" ] ||
  fail "stalled-shard digest differs from clean run"
grep -q 'requeues=1' "$TMP/stall.txt" || {
  cat "$TMP/stall.txt" >&2
  fail "expected exactly one hung-shard requeue"
}

# --- 4. element budget forces multi-pass, same result ---------------------
"$CFS" "${ARGS[@]}" --max-elements=900 > "$TMP/budget.txt" ||
  fail "budgeted campaign failed"
[ "$(digest_of "$TMP/budget.txt")" = "$REF" ] ||
  fail "budgeted digest differs from unlimited run"
PASSES=$(awk '/^passes/{gsub(",", "", $2); print $2}' "$TMP/budget.txt")
[ "${PASSES:-1}" -gt 1 ] || {
  cat "$TMP/budget.txt" >&2
  fail "budget 900 did not force a second pass"
}

echo "kill_resume_test: all green (digest $REF)"
