#!/bin/bash
# Service-level chaos test for cfsd, from outside the process:
#
#   1. N concurrent `cfs connect` sessions across a --threads x --batch
#      grid against one daemon, all on the same cached model.
#   2. kill -9 the daemon while every session is mid-campaign (an injected
#      stall pins them there), restart it on the same state dir: recovery
#      re-admits every session, clients reconnect with the same command
#      line, and every final digest must equal the uninterrupted
#      single-process reference -- the crash-safe bit-identity invariant.
#   3. a session that cannot fit a tiny --mem-budget is refused with a
#      structured admission_refused error (client exit code 3) and the
#      daemon keeps serving.
#   4. graceful shutdown both ways: the shutdown op drains the daemon, and
#      SIGTERM produces a clean exit.
#
# The circuit is the *generated* canonical netlist (`cfs gen --out`), not a
# profile name: `cfs connect` re-serializes whatever it loads, and the
# generated file is a serialization fixpoint, so the reference `cfs sim`
# and every session simulate byte-identical fault universes (same fault
# ids => same digest).
#
# Usage: daemon_chaos_test.sh /path/to/cfs /path/to/cfsd
CFS=${1:?usage: daemon_chaos_test.sh /path/to/cfs /path/to/cfsd}
CFSD=${2:?usage: daemon_chaos_test.sh /path/to/cfs /path/to/cfsd}
TMP=$(mktemp -d)
DPID=""
trap '[ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null; rm -rf "$TMP"' EXIT

fail() {
  echo "daemon_chaos_test: FAIL: $*" >&2
  exit 1
}

digest_of() { awk '/^digest/{print $2}' "$1"; }

wait_for_socket() {
  local sock=$1 i
  for i in $(seq 100); do
    "$CFS" connect "$sock" --stats > /dev/null 2>&1 && return 0
    sleep 0.1
  done
  return 1
}

SOCK=$TMP/cfsd.sock
STATE=$TMP/state
SUITE="--random=96 --seed=9"
# The threads x batch grid: one session per point, one shared model.
GRID="1:1 2:1 1:8 2:8"

# --- reference: uninterrupted single-process campaign ----------------------
"$CFS" gen s298 --out="$TMP/c.bench" > /dev/null ||
  fail "cannot generate canonical netlist"
"$CFS" sim "$TMP/c.bench" $SUITE --retries=0 > "$TMP/ref.txt" ||
  fail "reference campaign failed"
REF=$(digest_of "$TMP/ref.txt")
[ -n "$REF" ] || fail "no digest in reference output"

# --- 1+2. concurrent sessions, kill -9 mid-campaign, recover --------------
# Every session stalls 5 s on shard 0 at vector 2 (one firing each), so the
# kill reliably lands with all campaigns admitted, checkpointed, and
# unfinished.
"$CFSD" --state-dir="$STATE" --socket="$SOCK" --checkpoint-every=2 \
  --inject=stall:0:2:5000:4 > "$TMP/daemon1.log" 2>&1 &
DPID=$!
wait_for_socket "$SOCK" || { cat "$TMP/daemon1.log" >&2; fail "daemon 1 never listened"; }

CPIDS=()
for tb in $GRID; do
  t=${tb%:*} b=${tb#*:}
  "$CFS" connect "$SOCK" --session="grid-t${t}-b${b}" \
    --circuit="$TMP/c.bench" $SUITE --threads="$t" --batch="$b" --quiet \
    > "$TMP/open_t${t}_b${b}.txt" 2>&1 &
  CPIDS+=($!)
done
sleep 2  # all four are open, stalled mid-campaign, state on disk
for tb in $GRID; do
  t=${tb%:*} b=${tb#*:}
  [ -f "$STATE/grid-t${t}-b${b}/manifest.json" ] || {
    cat "$TMP/open_t${t}_b${b}.txt" "$TMP/daemon1.log" >&2
    fail "session grid-t${t}-b${b} not persisted before the kill"
  }
  # The stall must be holding every campaign open: a finished session here
  # would make the recovery leg vacuous.
  [ ! -f "$STATE/grid-t${t}-b${b}/result.json" ] ||
    fail "session grid-t${t}-b${b} finished before the kill; raise the stall"
done

kill -9 "$DPID" 2> /dev/null || fail "daemon 1 already dead before kill -9"
wait "$DPID" 2> /dev/null
DPID=""
for pid in "${CPIDS[@]}"; do wait "$pid" 2> /dev/null; done  # clients fail; fine

# Restart on the same state dir (no injector): recovery re-admits every
# unfinished session and finishes it without any client involvement.
"$CFSD" --state-dir="$STATE" --socket="$SOCK" --checkpoint-every=2 \
  > "$TMP/daemon2.log" 2>&1 &
DPID=$!
wait_for_socket "$SOCK" || { cat "$TMP/daemon2.log" >&2; fail "daemon 2 never listened"; }

# Reconnect with the *same* command line: the spec fingerprint must match
# the persisted manifest, and every digest must equal the reference.
for tb in $GRID; do
  t=${tb%:*} b=${tb#*:}
  "$CFS" connect "$SOCK" --session="grid-t${t}-b${b}" \
    --circuit="$TMP/c.bench" $SUITE --threads="$t" --batch="$b" --quiet \
    > "$TMP/done_t${t}_b${b}.txt" 2>&1 ||
    { cat "$TMP/done_t${t}_b${b}.txt" >&2; fail "reconnect t=$t b=$b failed"; }
  D=$(digest_of "$TMP/done_t${t}_b${b}.txt")
  [ "$D" = "$REF" ] || {
    cat "$TMP/done_t${t}_b${b}.txt" >&2
    fail "kill -9 + recovery digest $D != uninterrupted $REF (t=$t b=$b)"
  }
done

# The daemon's own books: four sessions recovered, four completed, none
# failed.
"$CFS" connect "$SOCK" --stats > "$TMP/stats.txt" ||
  fail "stats after recovery failed"
grep -q '"resumed":4' "$TMP/stats.txt" ||
  { cat "$TMP/stats.txt" >&2; fail "expected 4 recovered sessions"; }
grep -q '"completed":4' "$TMP/stats.txt" ||
  { cat "$TMP/stats.txt" >&2; fail "expected 4 completed sessions"; }
grep -q '"failed":0' "$TMP/stats.txt" ||
  { cat "$TMP/stats.txt" >&2; fail "expected no failed sessions"; }

# --- 4a. SIGTERM drains daemon 2 cleanly ----------------------------------
kill -TERM "$DPID"
wait "$DPID"
RC=$?
DPID=""
[ "$RC" -eq 0 ] || { cat "$TMP/daemon2.log" >&2; fail "SIGTERM exit code $RC"; }
grep -q 'cfsd stopped' "$TMP/daemon2.log" ||
  { cat "$TMP/daemon2.log" >&2; fail "daemon 2 did not report a clean stop"; }

# --- 3. admission refusal is structured, the daemon survives --------------
"$CFSD" --state-dir="$TMP/state2" --socket="$TMP/sock2" --mem-budget=1000 \
  > "$TMP/daemon3.log" 2>&1 &
DPID=$!
wait_for_socket "$TMP/sock2" ||
  { cat "$TMP/daemon3.log" >&2; fail "daemon 3 never listened"; }

"$CFS" connect "$TMP/sock2" --session=toobig --circuit="$TMP/c.bench" \
  $SUITE --elements=4000 > "$TMP/refused.txt" 2>&1
RC=$?
[ "$RC" -eq 3 ] || {
  cat "$TMP/refused.txt" >&2
  fail "over-budget open exited $RC, want 3 (admission_refused)"
}
grep -q 'admission_refused' "$TMP/refused.txt" ||
  { cat "$TMP/refused.txt" >&2; fail "refusal did not name admission_refused"; }

# The refusal never aborts the daemon: a session that fits still completes.
"$CFS" connect "$TMP/sock2" --session=fits --circuit="$TMP/c.bench" \
  $SUITE --elements=900 --quiet > "$TMP/fits.txt" 2>&1 ||
  { cat "$TMP/fits.txt" "$TMP/daemon3.log" >&2; fail "in-budget session failed"; }
[ "$(digest_of "$TMP/fits.txt")" = "$REF" ] ||
  fail "in-budget session digest differs from reference"

# --- 4b. the shutdown op drains daemon 3 ----------------------------------
"$CFS" connect "$TMP/sock2" --shutdown > /dev/null ||
  fail "shutdown op failed"
wait "$DPID"
RC=$?
DPID=""
[ "$RC" -eq 0 ] || { cat "$TMP/daemon3.log" >&2; fail "shutdown exit code $RC"; }

echo "daemon_chaos_test: all green (digest $REF, 4 sessions recovered)"
