// Thread-scaling study for the sharded driver: vectors/second against the
// shard count on the largest circuits of the active scale, random
// patterns, csim-MV engine.  Every sharded run is checked against the
// single-threaded engine (identical hard/potential coverage) -- the
// determinism guarantee is the oracle, not an afterthought.
//
// Speedup depends on the host: on a single-core machine the extra shards
// only add fork-join overhead and the expected ratio is <= 1.
#include <cstdio>
#include <thread>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace cfs;
  bench::JsonReport json(argc, argv, "scaling_threads");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Thread scaling: csim-MV sharded over random patterns "
              "(host reports %u hardware threads)\n\n", hw);

  // The two largest profiles of the active scale.
  std::vector<std::string> names = bench::suite();
  if (names.size() > 2) names.erase(names.begin(), names.end() - 2);

  Table t({"circuit", "#flts", "thr", "cpu", "vec/s", "speedup", "cvg%"});
  bool ok = true;
  for (const std::string& name : names) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const PatternSet p = PatternSet::random(c.inputs().size(), 256, 5);
    const RunResult ref =
        run_csim(c, u, p, CsimVariant::MV, bench::kFfInit);
    const double base = ref.cpu_s;
    for (unsigned k : {1u, 2u, 4u, 8u}) {
      const RunResult r = run_csim_sharded(c, u, TestSuite(p),
                                           CsimVariant::MV, k,
                                           bench::kFfInit);
      if (r.cov.hard != ref.cov.hard || r.cov.potential != ref.cov.potential) {
        std::printf("!! %s x%u disagrees with the single-threaded engine\n",
                    name.c_str(), k);
        ok = false;
      }
      t.row({k == 1 ? name : "", k == 1 ? fmt_count(u.size()) : "",
             fmt_count(k), fmt_fixed(r.cpu_s, 3),
             fmt_count(static_cast<std::size_t>(p.size() / r.cpu_s)),
             fmt_fixed(base / r.cpu_s, 2), fmt_fixed(r.cov.pct(), 2)});
      json.begin_row();
      json.field("circuit", name);
      json.field("faults", static_cast<std::uint64_t>(u.size()));
      json.field("threads", std::uint64_t{k});
      json.field("shards", std::uint64_t{r.threads});
      json.field("cpu_s", r.cpu_s);
      json.field("vectors_per_s", static_cast<double>(p.size()) / r.cpu_s);
      json.field("speedup", base / r.cpu_s);
      json.field("coverage_pct", r.cov.pct());
      json.field("hard", static_cast<std::uint64_t>(r.cov.hard));
      json.field("elements_evaluated", r.stats.total.elements_evaluated);
      json.field("faults_dropped", r.stats.total.faults_dropped);
      json.end_row();
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("speedup is vs. the single-threaded csim-MV engine; "
              "all rows verified bit-identical coverage\n");
  return ok ? 0 : 1;
}
