// Figure-style series: cumulative fault coverage and live fault-element
// population per vector, for one benchmark circuit.  The paper prints only
// tables; this bench exposes the dynamics behind its Table 5 remark that
// random-pattern memory stays low "because faults are rather slowly
// activated".
#include <cstdio>
#include <string>

#include "common.h"
#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "patterns/pattern.h"

int main(int argc, char** argv) {
  using namespace cfs;
  const std::string name = argc > 1 ? argv[1] : bench::largest();
  const Circuit c = make_benchmark(name);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 512, 5);

  ConcurrentSim sim(c, u);
  sim.reset(bench::kFfInit);
  std::printf("coverage curve: %s, %zu faults, random patterns\n",
              name.c_str(), u.size());
  std::printf("%8s %10s %12s %14s %16s\n", "vector", "cvg%", "live elems",
              "gates proc.", "elem evals");
  std::size_t hard = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    hard += sim.apply_vector(p[i]);
    if ((i + 1) % 32 == 0 || i + 1 == p.size()) {
      std::printf("%8zu %10.2f %12zu %14llu %16llu\n", i + 1,
                  100.0 * static_cast<double>(hard) /
                      static_cast<double>(u.size()),
                  sim.live_elements(),
                  static_cast<unsigned long long>(sim.gates_processed()),
                  static_cast<unsigned long long>(sim.elements_evaluated()));
    }
  }
  return 0;
}
