// Figure-style series: cumulative fault coverage and live fault-element
// population per vector, for one benchmark circuit.  The paper prints only
// tables; this bench exposes the dynamics behind its Table 5 remark that
// random-pattern memory stays low "because faults are rather slowly
// activated".
//
// Since PR 7 the series comes from the obs::Timeline sampler -- the same
// per-vector ring `cfs sim --timeline` streams -- instead of ad-hoc
// accessor polling, so the bench measures exactly what campaign telemetry
// reports.  With `--json=FILE` every sampled vector lands in FILE as one
// row (the printf table keeps the every-32nd summary).
#include <cstdio>
#include <string>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "obs/timeline.h"
#include "patterns/pattern.h"

int main(int argc, char** argv) {
  using namespace cfs;
  bench::JsonReport json(argc, argv, "coverage_curve");
  std::string name = bench::largest();
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) name = argv[i];
  }
  const Circuit c = make_benchmark(name);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 512, 5);

  obs::Timeline timeline(p.size());
  const RunResult r = run_csim_sharded(c, u, TestSuite(p), CsimVariant::MV,
                                       /*num_threads=*/1, bench::kFfInit,
                                       /*drop_detected=*/true,
                                       /*trace=*/nullptr, /*batch_width=*/1,
                                       &timeline);

  std::printf("coverage curve: %s, %zu faults, random patterns\n",
              name.c_str(), u.size());
  std::printf("%8s %10s %12s %12s %14s %16s\n", "vector", "cvg%",
              "live flts", "live elems", "gates proc.", "elem travs");
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const obs::TimelineSample& s = timeline.at(i);
    const double cvg = 100.0 * static_cast<double>(s.hard) /
                       static_cast<double>(u.size());
    if ((s.vec + 1) % 32 == 0 || s.vec + 1 == p.size()) {
      std::printf("%8llu %10.2f %12llu %12llu %14llu %16llu\n",
                  static_cast<unsigned long long>(s.vec + 1), cvg,
                  static_cast<unsigned long long>(s.live_faults),
                  static_cast<unsigned long long>(s.live_elements),
                  static_cast<unsigned long long>(s.gates),
                  static_cast<unsigned long long>(s.traversals));
    }
    json.begin_row();
    json.field("circuit", name);
    json.field("vec", s.vec);
    json.field("hard", s.hard);
    json.field("potential", s.potential);
    json.field("coverage_pct", cvg);
    json.field("dropped", s.dropped);
    json.field("live_faults", s.live_faults);
    json.field("live_elements", s.live_elements);
    json.field("gates", s.gates);
    json.field("traversals", s.traversals);
    json.end_row();
  }
  std::printf("final coverage %.2f%% (%zu/%zu hard, %zu potential)\n",
              r.cov.pct(), r.cov.hard, r.cov.total, r.cov.potential);
  return 0;
}
