// Ablation C: event-driven fault dropping.  With dropping disabled,
// detected faults keep diverging elements and consuming evaluation work;
// the paper: "dropped fault effects should be eliminated as soon as
// possible for efficient fault simulation."
#include <cstdio>

#include "common.h"
#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/table.h"
#include "patterns/pattern.h"
#include "util/stopwatch.h"

int main() {
  using namespace cfs;
  std::printf("Ablation C: event-driven fault dropping\n\n");
  Table t({"ckt", "drop cpu", "keep cpu", "drop elems", "keep elems"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const TestSuite p = bench::deterministic_tests(c, u, 1024, 1000);

    double cpu[2];
    std::size_t elems[2];
    int i = 0;
    for (bool drop : {true, false}) {
      ConcurrentSim sim(c, u, CsimOptions{.split_lists = true,
                                          .drop_detected = drop});
      Stopwatch sw;
      for (const PatternSet& seq : p.sequences()) {
        sim.reset(bench::kFfInit);
        for (std::size_t k = 0; k < seq.size(); ++k) sim.apply_vector(seq[k]);
      }
      cpu[i] = sw.seconds();
      elems[i] = sim.peak_elements();
      ++i;
    }
    t.row({name, fmt_fixed(cpu[0], 3), fmt_fixed(cpu[1], 3),
           fmt_count(elems[0]), fmt_count(elems[1])});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
