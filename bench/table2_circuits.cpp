// Table 2 of the paper: benchmark circuit statistics and the deterministic
// test sets applied to them.
#include <cstdio>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/table.h"
#include "patterns/tgen.h"

int main(int argc, char** argv) {
  using namespace cfs;
  bench::JsonReport json(argc, argv, "table2_circuits");
  std::printf("Table 2: circuit and test statistics\n");
  std::printf("(synthetic profile-matched circuits; see DESIGN.md)\n\n");

  Table t({"ckt", "#PI", "#PO", "#FF", "#gates", "levels", "#faults",
           "#ptns", "#seqs", "tgen cvg%"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const auto st = c.stats();
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    TgenOptions opt;
    opt.seed = 1000;
    opt.max_vectors = 1024;
    opt.stale_limit = 10;
    opt.ff_init = bench::kFfInit;
    const TgenResult r = generate_tests(c, u, opt);
    t.row({name, fmt_count(st.num_pis), fmt_count(st.num_pos),
           fmt_count(st.num_dffs), fmt_count(st.num_comb_gates),
           fmt_count(st.num_levels), fmt_count(u.size()),
           fmt_count(r.suite.total_vectors()),
           fmt_count(r.suite.num_sequences()),
           fmt_fixed(r.coverage.pct(), 2)});
    json.begin_row();
    json.field("circuit", name);
    json.field("pis", std::uint64_t{st.num_pis});
    json.field("pos", std::uint64_t{st.num_pos});
    json.field("ffs", std::uint64_t{st.num_dffs});
    json.field("gates", std::uint64_t{st.num_comb_gates});
    json.field("levels", std::uint64_t{st.num_levels});
    json.field("faults", static_cast<std::uint64_t>(u.size()));
    json.field("vectors",
               static_cast<std::uint64_t>(r.suite.total_vectors()));
    json.field("sequences",
               static_cast<std::uint64_t>(r.suite.num_sequences()));
    json.field("tgen_coverage_pct", r.coverage.pct());
    json.end_row();
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
