// Shared support for the table benches: benchmark suite selection and
// deterministic test-set construction.
//
// Scale control: set CFS_BENCH_SCALE=tiny|small|full (default "small").
//   tiny  -- s27..s526: seconds, for smoke runs
//   small -- everything except s35932
//   full  -- the whole paper suite including the s35932 profile
#pragma once

#include <string>
#include <vector>

#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "netlist/circuit.h"
#include "patterns/pattern.h"
#include "util/logic.h"

namespace cfs::bench {

/// All table experiments assume a hardware reset to 0.  The paper's engines
/// run 3-valued from the all-X state; our profile-matched synthetic
/// circuits are not reliably synchronizable from X (most real ISCAS-89
/// designs are), so every engine gets the same reset assumption -- the
/// relative comparisons the tables make are unaffected, and the all-X
/// machinery is exercised exhaustively by the test suite instead (see
/// tests/test_concurrent_property.cpp).
inline constexpr Val kFfInit = Val::Zero;

/// Benchmark names for the active scale.
std::vector<std::string> suite();

/// The largest circuit of the active scale (for Table 5).
std::string largest();

/// Deterministic test suite for a circuit (sequences separated by resets):
/// tgen with a per-circuit budget, reproducible from the seed.
TestSuite deterministic_tests(const Circuit& c, const FaultUniverse& u,
                              std::size_t max_vectors, std::uint64_t seed);

/// Human-readable MiB with two decimals (the paper reports "meg").
std::string fmt_meg(std::size_t bytes);

}  // namespace cfs::bench
