// Shared support for the table benches: benchmark suite selection and
// deterministic test-set construction.
//
// Scale control: set CFS_BENCH_SCALE=tiny|small|full (default "small").
//   tiny  -- s27..s526: seconds, for smoke runs
//   small -- everything except s35932
//   full  -- the whole paper suite including the s35932 profile
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "netlist/circuit.h"
#include "obs/json_stats.h"
#include "patterns/pattern.h"
#include "util/logic.h"

namespace cfs::bench {

/// All table experiments assume a hardware reset to 0.  The paper's engines
/// run 3-valued from the all-X state; our profile-matched synthetic
/// circuits are not reliably synchronizable from X (most real ISCAS-89
/// designs are), so every engine gets the same reset assumption -- the
/// relative comparisons the tables make are unaffected, and the all-X
/// machinery is exercised exhaustively by the test suite instead (see
/// tests/test_concurrent_property.cpp).
inline constexpr Val kFfInit = Val::Zero;

/// Benchmark names for the active scale.
std::vector<std::string> suite();

/// The largest circuit of the active scale (for Table 5).
std::string largest();

/// Deterministic test suite for a circuit (sequences separated by resets):
/// tgen with a per-circuit budget, reproducible from the seed.
TestSuite deterministic_tests(const Circuit& c, const FaultUniverse& u,
                              std::size_t max_vectors, std::uint64_t seed);

/// Human-readable MiB with two decimals (the paper reports "meg").
std::string fmt_meg(std::size_t bytes);

/// Machine-readable sibling for a table bench.  Constructed from argv:
/// with `--json=FILE` every row() lands in FILE as
///   {"bench": ..., "scale": ..., "rows": [{...}, ...]}
/// and without the flag all calls are no-ops, so benches stay plain
/// printf tables by default.  The document is finalized in save() (called
/// from the destructor if not explicit).
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string_view bench_name);
  ~JsonReport();

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return writer_ != nullptr; }

  void begin_row();
  void end_row();
  void field(std::string_view key, std::string_view v);
  void field(std::string_view key, std::uint64_t v);
  void field(std::string_view key, double v);

  /// Close the rows array and the document; prints the path written.
  void save();

 private:
  std::string path_;
  std::ofstream file_;
  std::unique_ptr<obs::JsonWriter> writer_;
};

}  // namespace cfs::bench
