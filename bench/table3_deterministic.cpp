// Table 3 of the paper: stuck-at fault simulation of deterministic test
// sets -- CPU time and memory for csim, csim-V, csim-M, csim-MV and the
// PROOFS-style baseline.  (The paper's claim: both improvements cut time
// consistently; macros cut memory on large circuits; csim-MV is
// competitive with PROOFS and wins on the largest circuits.)
#include <cstdio>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace cfs;
  std::printf("Table 3: deterministic patterns (I) -- stuck-at\n\n");
  Table t({"ckt", "#ptns", "cvg%", "csim", "csim-V", "csim-M", "csim-MV",
           "PROOFS", "MV mem", "PR mem"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const TestSuite p = bench::deterministic_tests(c, u, 1024, 1000);

    const RunResult plain = run_csim(c, u, p, CsimVariant::Plain, bench::kFfInit);
    const RunResult v = run_csim(c, u, p, CsimVariant::V, bench::kFfInit);
    const RunResult m = run_csim(c, u, p, CsimVariant::M, bench::kFfInit);
    const RunResult mv = run_csim(c, u, p, CsimVariant::MV, bench::kFfInit);
    const RunResult pr = run_proofs(c, u, p, bench::kFfInit);

    t.row({name, fmt_count(p.total_vectors()), fmt_fixed(mv.cov.pct(), 2),
           fmt_fixed(plain.cpu_s, 3), fmt_fixed(v.cpu_s, 3),
           fmt_fixed(m.cpu_s, 3), fmt_fixed(mv.cpu_s, 3),
           fmt_fixed(pr.cpu_s, 3), bench::fmt_meg(mv.mem_bytes),
           bench::fmt_meg(pr.mem_bytes)});

    if (mv.cov.hard != pr.cov.hard || mv.cov.hard != plain.cov.hard) {
      std::printf("!! coverage mismatch on %s\n", name.c_str());
      return 1;
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("CPU columns in seconds; mem in MiB (instrumented structure "
              "bytes, not RSS).\n");
  return 0;
}
