// Ablation D: structural fault collapsing.  Simulating one representative
// per equivalence class and expanding the verdict must reproduce the full
// run's detections while shrinking the simulated universe by ~30-40%.
#include <cstdio>

#include "common.h"
#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "faults/sampling.h"
#include "gen/iscas_profiles.h"
#include "harness/table.h"
#include "patterns/pattern.h"
#include "util/stopwatch.h"

int main() {
  using namespace cfs;
  std::printf("Ablation D: equivalence collapsing\n\n");
  Table t({"ckt", "faults", "classes", "full cpu", "collapsed cpu",
           "det match"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const TestSuite p = bench::deterministic_tests(c, u, 512, 1000);
    const auto rep = collapse_equivalent(c, u);
    const SubUniverse reps = representative_universe(u, rep);

    ConcurrentSim full(c, u);
    Stopwatch sw_full;
    for (const PatternSet& seq : p.sequences()) {
      full.reset(bench::kFfInit);
      for (std::size_t i = 0; i < seq.size(); ++i) full.apply_vector(seq[i]);
    }
    const double t_full = sw_full.seconds();

    ConcurrentSim collapsed(c, reps.universe);
    Stopwatch sw_col;
    for (const PatternSet& seq : p.sequences()) {
      collapsed.reset(bench::kFfInit);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        collapsed.apply_vector(seq[i]);
      }
    }
    const double t_col = sw_col.seconds();

    const auto expanded = expand_to_classes(collapsed.status(), reps, rep);
    bool match = true;
    for (std::size_t i = 0; i < u.size(); ++i) {
      match &= (expanded[i] == Detect::Hard) ==
               (full.status()[i] == Detect::Hard);
    }
    t.row({name, fmt_count(u.size()), fmt_count(reps.universe.size()),
           fmt_fixed(t_full, 3), fmt_fixed(t_col, 3),
           match ? "yes" : "NO"});
    if (!match) {
      std::printf("!! expansion mismatch on %s\n", name.c_str());
      return 1;
    }
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
