// Micro-benchmarks (google-benchmark) of the kernels the paper's speed
// rests on: table-lookup vs fold gate evaluation, the level-bucket event
// queue, the good-machine simulator, fault-list merging via the full
// engine, and the timing wheel.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "gen/circuit_gen.h"
#include "gen/iscas_profiles.h"
#include "netlist/gate.h"
#include "patterns/pattern.h"
#include "sim/batch_good_sim.h"
#include "sim/delay_sim.h"
#include "sim/good_sim.h"
#include "util/dualrail.h"

namespace {

using namespace cfs;

Circuit medium_circuit() {
  GenProfile p;
  p.name = "bench_med";
  p.num_pis = 16;
  p.num_pos = 8;
  p.num_dffs = 32;
  p.num_gates = 800;
  p.seed = 1234;
  return generate_circuit(p);
}

void BM_GateEvalFold(benchmark::State& state) {
  GateState s = 0;
  s = state_set(s, 0, Val::One);
  s = state_set(s, 1, Val::X);
  s = state_set(s, 2, Val::One);
  s = state_set(s, 3, Val::Zero);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_kind(GateKind::Nand, s, 4));
    s ^= 0b10;  // perturb a pin so the value is not constant-folded
  }
}
BENCHMARK(BM_GateEvalFold);

void BM_GateEvalTable(benchmark::State& state) {
  const auto& table = fast_table(GateKind::Nand, 4);
  GateState s = 0b01110010;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table[s & 0xFF]);
    s = (s * 0x9E37u + 1) & 0xFF;
  }
}
BENCHMARK(BM_GateEvalTable);

void BM_GoodSimVector(benchmark::State& state) {
  const Circuit c = medium_circuit();
  GoodSim sim(c, Val::Zero);
  const PatternSet p = PatternSet::random(c.inputs().size(), 256, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    sim.apply(p[i % p.size()]);
    sim.clock();
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_GoodSimVector);

void BM_ConcurrentVector(benchmark::State& state) {
  const Circuit c = medium_circuit();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  CsimOptions opt;
  opt.split_lists = state.range(0) != 0;
  opt.drop_detected = false;  // steady-state fault population
  ConcurrentSim sim(c, u, opt);
  sim.reset(Val::Zero);
  const PatternSet p = PatternSet::random(c.inputs().size(), 256, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    sim.apply_vector(p[i % p.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ConcurrentVector)->Arg(0)->Arg(1);

// Many short sequences with a reset between each, the pattern where pool
// compaction (arg = 1) earns its keep: each reset re-dispenses the arena
// from index 0, so the rebuilt lists are laid out contiguously in
// traversal order instead of inheriting the previous sequence's scrambled
// free list.  Compare against arg = 0 (same work, free-list order).
void BM_ConcurrentResequence(benchmark::State& state) {
  const Circuit c = medium_circuit();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  CsimOptions opt;
  opt.split_lists = true;
  opt.drop_detected = false;
  opt.compact_pool = state.range(0) != 0;
  ConcurrentSim sim(c, u, opt);
  const PatternSet p = PatternSet::random(c.inputs().size(), 32, 3);
  for (auto _ : state) {
    sim.reset(Val::Zero);
    for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  }
  // One item = one vector (reset amortised in), the same unit
  // BM_ConcurrentVector reports, so the two items_per_second columns are
  // directly comparable.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.size()));
}
BENCHMARK(BM_ConcurrentResequence)->Arg(0)->Arg(1);

// Per-vector good-machine throughput of the two-dimensional driver's fast
// path: arg = 1 replays a combinational suite one vector at a time through
// the scalar GoodSim; arg = 64 packs the same suite 64 vectors per Word64
// band through BatchGoodSim, input packing included (the batched driver
// pays it per step too).  One item = one vector either way, so the
// items_per_second columns give the packed speedup directly.
void BM_BatchVector(benchmark::State& state) {
  GenProfile gp;
  gp.name = "bench_batch";
  gp.num_pis = 16;
  gp.num_pos = 8;
  gp.num_dffs = 0;  // combinational: every vector is an independent lane
  gp.num_gates = 800;
  gp.seed = 1234;
  const Circuit c = generate_circuit(gp);
  const std::size_t npis = c.inputs().size();
  const PatternSet p = PatternSet::random(npis, 256, 4);
  const auto width = static_cast<unsigned>(state.range(0));

  if (width == 1) {
    GoodSim sim(c);
    for (auto _ : state) {
      for (std::size_t i = 0; i < p.size(); ++i) {
        sim.apply(p[i]);
        benchmark::DoNotOptimize(sim.value(0));
      }
    }
  } else {
    BatchGoodSim sim(c);
    sim.reset();
    for (auto _ : state) {
      for (std::size_t base = 0; base < p.size(); base += width) {
        const std::size_t lanes = std::min<std::size_t>(width,
                                                        p.size() - base);
        for (std::size_t pi = 0; pi < npis; ++pi) {
          Word64 w = splat64(Val::X);
          for (std::size_t l = 0; l < lanes; ++l) {
            w_set(w, static_cast<unsigned>(l), p[base + l][pi]);
          }
          sim.set_input(static_cast<unsigned>(pi), w);
        }
        sim.settle();
        benchmark::DoNotOptimize(sim.values().data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.size()));
}
BENCHMARK(BM_BatchVector)->Arg(1)->Arg(64);

void BM_DelaySimWave(benchmark::State& state) {
  GenProfile gp;
  gp.name = "bench_comb";
  gp.num_pis = 12;
  gp.num_pos = 8;
  gp.num_dffs = 0;
  gp.num_gates = 400;
  gp.seed = 99;
  const Circuit c = generate_circuit(gp);
  DelaySim sim(c, 2u);
  std::uint64_t toggle = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < c.inputs().size(); ++i) {
      sim.set_input(i, ((toggle >> i) & 1) ? Val::One : Val::Zero);
    }
    sim.run();
    ++toggle;
  }
}
BENCHMARK(BM_DelaySimWave);

}  // namespace

// Same --json=FILE convention as the table benches (run_benches.sh), spelled
// via google-benchmark's reporter flags.  Everything else passes through.
int main(int argc, char** argv) {
  static std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      args.push_back("--benchmark_out=" + a.substr(7));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(a);
    }
  }
  std::vector<char*> cargv;
  for (std::string& a : args) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
