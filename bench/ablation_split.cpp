// Ablation B: visible/invisible fault-list splitting (the paper's "V").
// Compares the combined-list and split-list engines on time and on the
// number of fault elements examined during merges.
#include <cstdio>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace cfs;
  std::printf("Ablation B: visible/invisible list splitting\n\n");
  Table t({"ckt", "combined cpu", "split cpu", "speedup", "comb evals",
           "split evals"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const TestSuite p = bench::deterministic_tests(c, u, 1024, 1000);
    const RunResult combined = run_csim(c, u, p, CsimVariant::Plain, bench::kFfInit);
    const RunResult split = run_csim(c, u, p, CsimVariant::V, bench::kFfInit);
    t.row({name, fmt_fixed(combined.cpu_s, 3), fmt_fixed(split.cpu_s, 3),
           fmt_fixed(combined.cpu_s / (split.cpu_s > 0 ? split.cpu_s : 1e-9),
                     2),
           fmt_count(combined.activity), fmt_count(split.activity)});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
