// Table 4 of the paper: higher-coverage deterministic tests (the authors'
// own sequential ATPG [14]) -- csim-MV vs PROOFS.  Our stand-in: a larger
// tgen budget with a fresh seed, which raises coverage over the Table 3
// sets on most circuits.
#include <cstdio>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace cfs;
  std::printf("Table 4: deterministic patterns (II) -- higher-coverage "
              "tests, csim-MV vs PROOFS\n\n");
  Table t({"ckt", "#ptns", "cvg%", "MV cpu", "MV mem", "PR cpu", "PR mem"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const TestSuite p = bench::deterministic_tests(c, u, 4096, 4242);

    const RunResult mv = run_csim(c, u, p, CsimVariant::MV, bench::kFfInit);
    const RunResult pr = run_proofs(c, u, p, bench::kFfInit);
    if (mv.cov.hard != pr.cov.hard) {
      std::printf("!! coverage mismatch on %s\n", name.c_str());
      return 1;
    }
    t.row({name, fmt_count(p.total_vectors()), fmt_fixed(mv.cov.pct(), 2),
           fmt_fixed(mv.cpu_s, 3), bench::fmt_meg(mv.mem_bytes),
           fmt_fixed(pr.cpu_s, 3), bench::fmt_meg(pr.mem_bytes)});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
