#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "patterns/tgen.h"

namespace cfs::bench {

namespace {

std::string scale() {
  const char* s = std::getenv("CFS_BENCH_SCALE");
  return s ? s : "small";
}

}  // namespace

std::vector<std::string> suite() {
  const std::string sc = scale();
  std::vector<std::string> names = {"s298", "s344", "s349", "s382",
                                    "s386", "s400", "s444", "s510",
                                    "s526"};
  if (sc == "tiny") return names;
  for (const char* n : {"s641", "s713", "s820", "s832", "s1196", "s1238",
                        "s1488", "s1494", "s5378"}) {
    names.push_back(n);
  }
  if (sc == "full") names.push_back("s35932");
  return names;
}

std::string largest() {
  return scale() == "full" ? "s35932" : "s5378";
}

TestSuite deterministic_tests(const Circuit& c, const FaultUniverse& u,
                              std::size_t max_vectors, std::uint64_t seed) {
  TgenOptions opt;
  opt.seed = seed;
  opt.max_vectors = max_vectors;
  opt.stale_limit = 25;
  opt.segment_len = 32;
  opt.ff_init = kFfInit;
  return generate_tests(c, u, opt).suite;
}

std::string fmt_meg(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

JsonReport::JsonReport(int argc, char** argv, std::string_view bench_name) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--json=", 0) == 0) path_ = std::string(a.substr(7));
  }
  if (path_.empty()) return;
  file_.open(path_);
  if (!file_) {
    std::fprintf(stderr, "cannot write %s\n", path_.c_str());
    std::exit(1);
  }
  writer_ = std::make_unique<obs::JsonWriter>(file_);
  writer_->begin_object();
  writer_->field("bench", bench_name);
  writer_->field("scale", scale());
  // The capture host's core count travels with every baseline: gates that
  // need real parallelism (tools/check_scaling_gate.py) must be able to
  // tell a measured win from a single-core artifact.
  writer_->field("host_hw_threads",
                 std::uint64_t{std::thread::hardware_concurrency()});
  writer_->key("rows");
  writer_->begin_array();
}

JsonReport::~JsonReport() { save(); }

void JsonReport::begin_row() {
  if (writer_) writer_->begin_object();
}

void JsonReport::end_row() {
  if (writer_) writer_->end_object();
}

void JsonReport::field(std::string_view key, std::string_view v) {
  if (writer_) writer_->field(key, v);
}

void JsonReport::field(std::string_view key, std::uint64_t v) {
  if (writer_) writer_->field(key, v);
}

void JsonReport::field(std::string_view key, double v) {
  if (writer_) writer_->field(key, v);
}

void JsonReport::save() {
  if (!writer_) return;
  writer_->end_array();
  writer_->end_object();
  writer_.reset();
  file_ << '\n';
  file_.close();
  std::printf("wrote %s\n", path_.c_str());
}

}  // namespace cfs::bench
