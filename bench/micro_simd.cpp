// Micro-benchmarks of the vector kernel table (simd/kernels.h), one set of
// runs per ISA the build + host carries, scalar included -- the same-binary
// same-day comparison the roofline report (tools/make_roofline.py) and the
// CI speedup gate are built from.  Comparing ISAs inside one process
// sidesteps host drift entirely: whatever this machine is doing today, it
// is doing it to every kernel table equally.
//
// Each benchmark reports items_per_second and bytes_per_second (the bytes
// the kernel must move per item, not cache traffic), so the roofline tool
// can place every kernel against the host's bandwidth and issue ceilings.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "netlist/gate.h"
#include "simd/simd.h"

namespace {

using cfs::simd::Isa;
using cfs::simd::Kernels;

constexpr std::size_t kWords = 4096;    // bitmap kernels: 256 Ki positions
constexpr std::size_t kElems = 1 << 16; // element kernels: 64 Ki items

struct Workload {
  std::vector<std::uint64_t> zeros;      // find_nonzero worst case
  std::vector<std::uint64_t> sparse;     // ~6% density bitmap
  std::vector<std::uint64_t> dense;      // ~50% density bitmap
  std::vector<std::uint32_t> pos_out;
  std::vector<std::uint8_t> table;       // 4 KiB padded eval table
  std::vector<std::uint32_t> idx;
  std::vector<std::uint8_t> bytes_out;
  std::vector<std::uint64_t> states;
  std::vector<std::uint8_t> outs;
  std::vector<std::uint8_t> cls;
};

Workload& workload() {
  static Workload w = [] {
    Workload v;
    std::mt19937_64 rng(0x5EEDu);
    v.zeros.assign(kWords, 0);
    v.sparse.resize(kWords);
    v.dense.resize(kWords);
    for (std::size_t i = 0; i < kWords; ++i) {
      v.sparse[i] = rng() & rng() & rng() & rng();
      v.dense[i] = rng();
    }
    v.pos_out.resize(kWords * 64);
    v.table.resize(4096 + cfs::kEvalTablePad);
    for (auto& b : v.table) {
      // 2-bit output codes like a real eval table.
      constexpr std::uint8_t codes[3] = {0, 2, 3};
      b = codes[rng() % 3];
    }
    v.idx.resize(kElems);
    for (auto& i : v.idx) i = static_cast<std::uint32_t>(rng() % 4096);
    v.bytes_out.resize(kElems);
    v.states.resize(kElems);
    for (auto& s : v.states) s = rng();
    v.outs.resize(kElems);
    for (auto& o : v.outs) {
      constexpr std::uint8_t codes[3] = {0, 2, 3};
      o = codes[rng() % 3];
    }
    v.cls.resize(kElems);
    return v;
  }();
  return w;
}

void bm_find_nonzero(benchmark::State& state, const Kernels* k) {
  Workload& w = workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->find_nonzero(w.zeros.data(), kWords));
  }
  state.SetItemsProcessed(state.iterations() * kWords);
  state.SetBytesProcessed(state.iterations() * kWords * sizeof(std::uint64_t));
}

void bm_expand_bits(benchmark::State& state, const Kernels* k,
                    const std::vector<std::uint64_t>& mask) {
  Workload& w = workload();
  std::size_t emitted = 0;
  for (auto _ : state) {
    emitted = k->expand_bits(mask.data(), mask.size(), 0, w.pos_out.data());
    benchmark::DoNotOptimize(w.pos_out.data());
  }
  state.SetItemsProcessed(state.iterations() * mask.size() * 64);
  state.SetBytesProcessed(
      state.iterations() *
      (mask.size() * sizeof(std::uint64_t) + emitted * sizeof(std::uint32_t)));
  state.counters["set_bits"] = static_cast<double>(emitted);
}

void bm_gather_u8(benchmark::State& state, const Kernels* k) {
  Workload& w = workload();
  for (auto _ : state) {
    k->gather_u8(w.table.data(), w.idx.data(), kElems, w.bytes_out.data());
    benchmark::DoNotOptimize(w.bytes_out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElems);
  state.SetBytesProcessed(state.iterations() * kElems *
                          (sizeof(std::uint32_t) + 2));
}

void bm_state_indices(benchmark::State& state, const Kernels* k) {
  Workload& w = workload();
  for (auto _ : state) {
    k->state_indices(w.states.data(), kElems, 0, 0xFFFFu, w.idx.data());
    benchmark::DoNotOptimize(w.idx.data());
  }
  state.SetItemsProcessed(state.iterations() * kElems);
  state.SetBytesProcessed(state.iterations() * kElems *
                          (sizeof(std::uint64_t) + sizeof(std::uint32_t)));
}

void bm_classify(benchmark::State& state, const Kernels* k) {
  Workload& w = workload();
  for (auto _ : state) {
    k->classify(w.states.data(), w.outs.data(), kElems, 0x2A2A2A2Au, 0xFFFFu,
                2, w.cls.data());
    benchmark::DoNotOptimize(w.cls.data());
  }
  state.SetItemsProcessed(state.iterations() * kElems);
  state.SetBytesProcessed(state.iterations() * kElems *
                          (sizeof(std::uint64_t) + 2));
}

void register_all() {
  for (Isa isa : {Isa::Scalar, Isa::Sse42, Isa::Avx2, Isa::Neon}) {
    const Kernels* k = cfs::simd::kernels_for(isa);
    if (k == nullptr) continue;
    const std::string tag(cfs::simd::isa_name(isa));
    benchmark::RegisterBenchmark(("BM_SimdFindNonzero/" + tag).c_str(),
                                 [k](benchmark::State& s) {
                                   bm_find_nonzero(s, k);
                                 });
    benchmark::RegisterBenchmark(("BM_SimdExpandBitsSparse/" + tag).c_str(),
                                 [k](benchmark::State& s) {
                                   bm_expand_bits(s, k, workload().sparse);
                                 });
    benchmark::RegisterBenchmark(("BM_SimdExpandBitsDense/" + tag).c_str(),
                                 [k](benchmark::State& s) {
                                   bm_expand_bits(s, k, workload().dense);
                                 });
    benchmark::RegisterBenchmark(("BM_SimdGatherU8/" + tag).c_str(),
                                 [k](benchmark::State& s) {
                                   bm_gather_u8(s, k);
                                 });
    benchmark::RegisterBenchmark(("BM_SimdStateIndices/" + tag).c_str(),
                                 [k](benchmark::State& s) {
                                   bm_state_indices(s, k);
                                 });
    benchmark::RegisterBenchmark(("BM_SimdClassify/" + tag).c_str(),
                                 [k](benchmark::State& s) {
                                   bm_classify(s, k);
                                 });
  }
}

}  // namespace

// Same --json=FILE convention as micro_kernels and the table benches
// (run_benches.sh), spelled via google-benchmark's reporter flags.
int main(int argc, char** argv) {
  register_all();
  static std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      args.push_back("--benchmark_out=" + a.substr(7));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(a);
    }
  }
  std::vector<char*> cargv;
  for (std::string& a : args) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
