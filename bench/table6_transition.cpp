// Table 6 of the paper: transition-fault simulation of the ISCAS-89
// circuits using stuck-at test sets.  Expected shape: coverages generally
// well below 50% -- stuck-at tests are not good transition tests.
#include <cstdio>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace cfs;
  std::printf("Table 6: transition fault simulation (stuck-at test sets)\n\n");
  Table t({"ckt", "#flts", "#ptns", "CPU", "MEM", "flt cvg%", "sa cvg%"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse stuck = FaultUniverse::all_stuck_at(c);
    const TestSuite p = bench::deterministic_tests(c, stuck, 1024, 1000);

    // Stuck-at coverage of the same tests for reference.
    const RunResult sa = run_csim(c, stuck, p, CsimVariant::V, bench::kFfInit);

    const FaultUniverse trans = FaultUniverse::all_transition(c);
    const RunResult tr = run_csim_transition(c, trans, p, bench::kFfInit);

    t.row({name, fmt_count(trans.size()), fmt_count(p.total_vectors()),
           fmt_fixed(tr.cpu_s, 3), bench::fmt_meg(tr.mem_bytes),
           fmt_fixed(tr.cov.pct(), 2), fmt_fixed(sa.cov.pct(), 2)});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
