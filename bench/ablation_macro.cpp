// Ablation A: macro extraction.  Sweeps the macro input cap and reports
// gate-count compression, simulation time, memory, and fault-element
// activity against the no-macro baseline (DESIGN.md calls this out as the
// paper's headline memory effect: Figure 3 / the s35932 16.2M -> 9.24M
// observation).
#include <cstdio>

#include "common.h"
#include "faults/fault.h"
#include "faults/macro_map.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "netlist/macro_extract.h"
#include "util/stopwatch.h"

int main() {
  using namespace cfs;
  std::printf("Ablation A: macro extraction (input-cap sweep)\n\n");
  Table t({"ckt", "cap", "#gates", "#macros", "#func flts", "cpu",
           "mem(MiB)"});
  for (const std::string& name : bench::suite()) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const TestSuite p = bench::deterministic_tests(c, u, 512, 1000);

    // Baseline: no macros.
    {
      const RunResult r = run_csim(c, u, p, CsimVariant::V, bench::kFfInit);
      t.row({name, "-", fmt_count(c.num_gates()), "0", "0",
             fmt_fixed(r.cpu_s, 3), bench::fmt_meg(r.mem_bytes)});
    }
    for (unsigned cap : {2u, 4u, 6u}) {
      // cap 6 tables have 4^6 entries per distinct faulty function;
      // enumerating them for the largest profiles costs more than the
      // experiment teaches, so sweep the wide cap only on smaller circuits.
      if (cap == 6 && c.num_gates() > 3000) continue;
      MacroOptions mo;
      mo.max_inputs = cap;
      const MacroExtraction ext = extract_macros(c, mo);
      const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
      ConcurrentSim sim(ext.circuit, u, CsimOptions{}, &mm);
      Stopwatch sw;
      for (const PatternSet& seq : p.sequences()) {
        sim.reset(bench::kFfInit);
        for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
      }
      t.row({name, fmt_count(cap), fmt_count(ext.circuit.num_gates()),
             fmt_count(ext.macros.size()), fmt_count(mm.num_functional),
             fmt_fixed(sw.seconds(), 3),
             bench::fmt_meg(sim.bytes() + ext.circuit.bytes())});
    }
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
