// Static vs dynamic partitioning across shard counts: the round-robin
// partition held for the whole run against the same run with live-element
// rebalancing enabled (sim/sharded_sim.h, --rebalance).
//
// Every row is verified against the single-threaded reference: identical
// hard/potential coverage regardless of policy -- rebalancing only moves
// faults between shards, never changes what they compute.
//
// Two times are reported per row:
//   cpu   -- wall-clock of the run on THIS host.  Only meaningful as a
//            static-vs-dynamic comparison when the host actually has the
//            cores: on a single-core machine the shards run sequentially,
//            wall-clock measures total work, and a repartition is pure
//            overhead (the expected ratio is <= 1).
//   crit  -- the critical path: sum over vectors of the slowest shard's
//            apply_vector latency, from the per-vector timeline samples.
//            Per-shard latency measures per-shard *work* even when the
//            shards are time-sliced onto one core, so this is the
//            host-independent model of multicore wall-clock -- the
//            quantity rebalancing actually shrinks.
// Rows carry hw_threads so the gate (tools/check_scaling_gate.py) asserts
// the wall-clock win only on hosts that can exhibit it and the
// critical-path win everywhere.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "obs/timeline.h"

int main(int argc, char** argv) {
  using namespace cfs;
  bench::JsonReport json(argc, argv, "scaling_rebalance");
  const unsigned hw = std::thread::hardware_concurrency();
  const bool tiny = bench::suite().size() <= 5;
  const std::size_t nvec = tiny ? 96 : 256;
  std::printf("Static vs dynamic partitioning: csim-MV sharded, s5378, "
              "%zu random vectors (host reports %u hardware threads)\n\n",
              nvec, hw);

  const Circuit c = make_benchmark("s5378");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), nvec, 9);
  const TestSuite suite(p);

  const RunResult ref =
      run_csim(c, u, p, CsimVariant::MV, bench::kFfInit);

  RebalancePolicy dynamic_policy;
  dynamic_policy.mode = RebalancePolicy::Mode::Auto;
  dynamic_policy.threshold = 1.10;
  dynamic_policy.cooldown = 8;

  // Three repetitions per configuration, medians reported: the per-run
  // wall noise on a shared host dwarfs the effect under test.
  constexpr int kReps = 3;

  Table t({"thr", "mode", "cpu", "crit", "cp speedup", "rebal", "cvg%"});
  bool ok = true;
  for (unsigned k : {1u, 2u, 4u, 8u}) {
    double static_cpu = 0.0, static_crit = 0.0;
    for (const bool dynamic : {false, true}) {
      const RebalancePolicy rp = dynamic ? dynamic_policy : RebalancePolicy{};
      std::vector<double> cpus, crits;
      RunResult r;
      for (int rep = 0; rep < kReps; ++rep) {
        // The timeline (per-vector sampling on both modes alike) supplies
        // the per-shard latencies the critical path is assembled from.
        obs::Timeline tl(4096, 1);
        r = run_csim_sharded(c, u, suite, CsimVariant::MV, k,
                             bench::kFfInit,
                             /*drop_detected=*/true,
                             /*trace=*/nullptr,
                             /*batch_width=*/1, &tl, rp);
        if (r.cov.hard != ref.cov.hard ||
            r.cov.potential != ref.cov.potential) {
          std::printf("!! x%u %s disagrees with the single-threaded "
                      "engine\n", k, dynamic ? "dynamic" : "static");
          ok = false;
        }
        std::uint64_t crit_us = 0;
        for (std::size_t i = 0; i < tl.size(); ++i) {
          std::uint64_t slowest = 0;
          for (const obs::ShardSample& sh : tl.at(i).shards) {
            slowest = std::max(slowest, sh.latency_us);
          }
          crit_us += slowest;
        }
        cpus.push_back(r.cpu_s);
        crits.push_back(static_cast<double>(crit_us) / 1e6);
      }
      std::sort(cpus.begin(), cpus.end());
      std::sort(crits.begin(), crits.end());
      const double cpu_s = cpus[kReps / 2];
      const double crit_s = crits[kReps / 2];
      if (!dynamic) {
        static_cpu = cpu_s;
        static_crit = crit_s;
      }
      const double cp_speedup = dynamic ? static_crit / crit_s : 1.0;
      t.row({dynamic ? "" : fmt_count(k), dynamic ? "dynamic" : "static",
             fmt_fixed(cpu_s, 3), fmt_fixed(crit_s, 3),
             fmt_fixed(cp_speedup, 2), fmt_count(r.stats.rebalances),
             fmt_fixed(r.cov.pct(), 2)});
      json.begin_row();
      json.field("circuit", "s5378");
      json.field("faults", static_cast<std::uint64_t>(u.size()));
      json.field("threads", std::uint64_t{k});
      json.field("shards", std::uint64_t{r.threads});
      json.field("mode", dynamic ? "dynamic" : "static");
      json.field("hw_threads", std::uint64_t{hw});
      json.field("vectors", static_cast<std::uint64_t>(p.size()));
      json.field("cpu_s", cpu_s);
      json.field("critical_path_s", crit_s);
      json.field("speedup_vs_static",
                 dynamic ? static_cpu / cpu_s : 1.0);
      json.field("cp_speedup_vs_static", cp_speedup);
      json.field("rebalances", r.stats.rebalances);
      json.field("faults_migrated", r.stats.faults_migrated);
      json.field("elements_migrated", r.stats.elements_migrated);
      json.field("coverage_pct", r.cov.pct());
      json.field("hard", static_cast<std::uint64_t>(r.cov.hard));
      json.end_row();
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("crit is the summed slowest-shard latency (the multicore "
              "wall-clock model); cp speedup is same-shard-count\n"
              "static crit over dynamic crit.  All rows verified "
              "bit-identical coverage.\n");
  return ok ? 0 : 1;
}
