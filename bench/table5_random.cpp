// Table 5 of the paper: random-pattern simulation of the largest circuit
// in the suite.  The paper applies increasing random-pattern counts to
// s35932 and reports coverage, CPU, and memory; memory stays below the
// deterministic-run peak because faults activate slowly.
#include <cstdio>

#include "common.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace cfs;
  const std::string name = bench::largest();
  const Circuit c = make_benchmark(name);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  std::printf("Table 5: random pattern simulation of %s (%zu faults)\n\n",
              name.c_str(), u.size());

  Table t({"#ptns", "flt cvg%", "MV cpu", "MV mem", "PR cpu", "PR mem"});
  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const PatternSet p = PatternSet::random(c.inputs().size(), n, 5);
    const RunResult mv = run_csim(c, u, p, CsimVariant::MV, bench::kFfInit);
    const RunResult pr = run_proofs(c, u, p, bench::kFfInit);
    if (mv.cov.hard != pr.cov.hard) {
      std::printf("!! coverage mismatch at %zu patterns\n", n);
      return 1;
    }
    t.row({fmt_count(n), fmt_fixed(mv.cov.pct(), 2), fmt_fixed(mv.cpu_s, 3),
           bench::fmt_meg(mv.mem_bytes), fmt_fixed(pr.cpu_s, 3),
           bench::fmt_meg(pr.mem_bytes)});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
