#!/bin/bash
# CI-style gate: configure, build, run the full test suite, and smoke the
# bench binaries at tiny scale (their built-in engine-agreement oracles
# catch regressions the unit tests might miss).
set -e
cd "$(dirname "$0")"
GEN=()
command -v ninja > /dev/null && GEN=(-G Ninja)
cmake -B build "${GEN[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure
export CFS_BENCH_SCALE=tiny
for b in table2_circuits table3_deterministic table6_transition \
         ablation_collapse scaling_threads; do
  echo "== smoke: $b =="
  ./build/bench/$b > /dev/null
done
./build/examples/quickstart > /dev/null
echo "check.sh: all green"
