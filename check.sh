#!/bin/bash
# CI-style gate: configure, build, run the full test suite, and smoke the
# bench binaries at tiny scale (their built-in engine-agreement oracles
# catch regressions the unit tests might miss).
set -e
cd "$(dirname "$0")"

# Generator fallback: under `set -e` a bare `command -v ninja && GEN=(...)`
# list aborts the whole script on machines without ninja instead of falling
# back to the default generator.
GEN=()
if command -v ninja > /dev/null; then
  GEN=(-G Ninja)
fi
cmake -B build "${GEN[@]}"
cmake --build build -j "$(nproc)"

# Run the suite and propagate ctest's exit code explicitly: `set -e` is
# easy to defeat from here (a later refactor wrapping this in `if`/`||`, or
# a `cd build && ctest` subshell, silently swallows the status), so the
# gate does not rely on it.
rc=0
ctest --test-dir build --output-on-failure || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "check.sh: tests FAILED (ctest exit $rc)" >&2
  exit "$rc"
fi

export CFS_BENCH_SCALE=tiny
for b in table2_circuits table3_deterministic table6_transition \
         ablation_collapse scaling_threads; do
  echo "== smoke: $b =="
  ./build/bench/$b > /dev/null
done
./build/examples/quickstart > /dev/null
echo "check.sh: all green"
